// Tests for the bench_compare regression gate (tools/bench_compare_lib):
// the JSONL record loader (including hostile input — the gate parses files
// produced by older commits, so malformed lines must fail with a line
// number, never crash), the direction-aware comparison logic, and the full
// CLI driven through RunBenchCompare with golden-pair fixtures on disk.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tools/bench_compare_lib.h"

namespace adarts::tools {
namespace {

std::string RecordLine(const std::string& bench, const std::string& dataset,
                       double checksum, double win_rate, double rmse) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\"bench\":\"%s\",\"params\":{\"dataset\":\"%s\"},"
                "\"seconds\":0.5,\"checksum\":%f,"
                "\"metrics\":{\"win_rate\":%f,\"rmse_best\":%f}}\n",
                bench.c_str(), dataset.c_str(), checksum, win_rate, rmse);
  return buf;
}

std::string WriteTempFile(const std::string& name, const std::string& text) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path, std::ios::trunc);
  out << text;
  return path;
}

TEST(ParseBenchRecordsTest, ParsesRecordsWithMetricsAndStages) {
  const std::string text =
      "{\"bench\":\"scenarios.cell\",\"params\":{\"scenario\":\"mcar\","
      "\"category\":\"Power\"},\"seconds\":1.25,\"checksum\":0.5,"
      "\"metrics\":{\"win_rate\":0.8},"
      "\"stages\":{\"counters\":{},\"spans_seconds\":{\"train\":2.5},"
      "\"histograms\":{\"recommend.latency\":{\"count\":10,\"sum_ns\":900,"
      "\"max_ns\":200,\"p50_ns\":80,\"p90_ns\":150,\"p99_ns\":190}}}}\n"
      "\n"
      "{\"bench\":\"scenarios.summary\",\"params\":{},\"seconds\":9,"
      "\"checksum\":1}\n";
  const auto records = ParseBenchRecords(text);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 2u);
  const BenchRecord& cell = records->front();
  EXPECT_EQ(cell.bench, "scenarios.cell");
  // Params are sorted by key so record identity is order-independent.
  EXPECT_EQ(cell.Key(), "scenarios.cell{category=Power,scenario=mcar}");
  EXPECT_DOUBLE_EQ(cell.seconds, 1.25);
  EXPECT_DOUBLE_EQ(cell.checksum, 0.5);
  EXPECT_DOUBLE_EQ(cell.metrics.at("win_rate"), 0.8);
  // Perf numbers are flattened out of stages.
  EXPECT_DOUBLE_EQ(cell.perf.at("seconds"), 1.25);
  EXPECT_DOUBLE_EQ(cell.perf.at("spans.train"), 2.5);
  EXPECT_DOUBLE_EQ(cell.perf.at("hist.recommend.latency.p99_ns"), 190.0);
  EXPECT_EQ(records->back().Key(), "scenarios.summary{}");
}

TEST(ParseBenchRecordsTest, LastOccurrenceWinsForDuplicateKeys) {
  // Appended re-runs duplicate keys; the loader keeps the latest line.
  const std::string text = RecordLine("b", "d", 1.0, 0.5, 2.0) +
                           RecordLine("b", "d", 9.0, 0.9, 1.0);
  const auto records = ParseBenchRecords(text);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_DOUBLE_EQ(records->front().checksum, 9.0);
  EXPECT_DOUBLE_EQ(records->front().metrics.at("win_rate"), 0.9);
}

TEST(ParseBenchRecordsTest, HostileInputFailsWithLineNumberNotCrash) {
  const struct {
    const char* label;
    const char* text;
  } kCases[] = {
      {"truncated JSON", "{\"bench\":\"b\",\"params\":{\n"},
      {"array root", "[1,2,3]\n"},
      {"number root", "42\n"},
      {"missing bench", "{\"params\":{},\"seconds\":1,\"checksum\":1}\n"},
      {"non-string param",
       "{\"bench\":\"b\",\"params\":{\"k\":7},\"seconds\":1,\"checksum\":1}\n"},
      {"non-number metric",
       "{\"bench\":\"b\",\"params\":{},\"seconds\":1,\"checksum\":1,"
       "\"metrics\":{\"m\":\"high\"}}\n"},
      {"garbage bytes", "\x01\x02 not json at all\n"},
  };
  for (const auto& c : kCases) {
    const std::string text =
        RecordLine("ok", "d", 1.0, 0.5, 2.0) + c.text;  // bad line is line 2
    const auto records = ParseBenchRecords(text);
    ASSERT_FALSE(records.ok()) << c.label;
    EXPECT_NE(records.status().ToString().find("line 2"), std::string::npos)
        << c.label << ": " << records.status().ToString();
  }
}

TEST(ParseBenchRecordsTest, DeeplyNestedJsonIsRejectedNotStackOverflowed) {
  std::string bomb(5000, '[');
  bomb += std::string(5000, ']');
  bomb += '\n';
  const auto records = ParseBenchRecords(bomb);
  EXPECT_FALSE(records.ok());
}

TEST(MetricDirectionTest, QualityNamesAreHigherBetterRestLowerBetter) {
  EXPECT_TRUE(MetricHigherIsBetter("win_rate"));
  EXPECT_TRUE(MetricHigherIsBetter("anomaly_f1_adarts"));
  EXPECT_TRUE(MetricHigherIsBetter("throughput_qps"));
  EXPECT_FALSE(MetricHigherIsBetter("rmse_best"));
  EXPECT_FALSE(MetricHigherIsBetter("algo_failures"));
  EXPECT_FALSE(MetricHigherIsBetter("seconds"));
}

class CompareTest : public ::testing::Test {
 protected:
  static std::vector<BenchRecord> Parse(const std::string& text) {
    auto records = ParseBenchRecords(text);
    EXPECT_TRUE(records.ok()) << records.status().ToString();
    return records.ok() ? *records : std::vector<BenchRecord>{};
  }
  CompareOptions options_;  // defaults: rel_tol 0.10, no perf
};

TEST_F(CompareTest, IdenticalRunsProduceNoFailingFindings) {
  const std::string run = RecordLine("b", "x", 1.0, 0.75, 2.0) +
                          RecordLine("b", "y", 3.0, 0.5, 1.5);
  const auto report =
      CompareBenchRecords(Parse(run), Parse(run), options_);
  EXPECT_FALSE(report.failed()) << report.ToString();
  EXPECT_EQ(report.compared_records, 2u);
  EXPECT_GE(report.compared_values, 6u);
}

TEST_F(CompareTest, DegradedLowerBetterMetricFails) {
  const auto baseline = Parse(RecordLine("b", "x", 1.0, 0.75, 2.0));
  const auto current = Parse(RecordLine("b", "x", 1.0, 0.75, 2.6));
  const auto report = CompareBenchRecords(baseline, current, options_);
  EXPECT_TRUE(report.failed()) << report.ToString();
}

TEST_F(CompareTest, FallingWinRateFailsRisingWinRateIsInfoOnly) {
  const auto baseline = Parse(RecordLine("b", "x", 1.0, 0.80, 2.0));
  const auto worse = Parse(RecordLine("b", "x", 1.0, 0.40, 2.0));
  EXPECT_TRUE(CompareBenchRecords(baseline, worse, options_).failed());
  const auto better = Parse(RecordLine("b", "x", 1.0, 1.0, 2.0));
  const auto report = CompareBenchRecords(baseline, better, options_);
  EXPECT_FALSE(report.failed()) << report.ToString();
  bool saw_improvement = false;
  for (const auto& f : report.findings) {
    saw_improvement =
        saw_improvement || f.kind == Finding::Kind::kMetricImprovement;
  }
  EXPECT_TRUE(saw_improvement);
}

TEST_F(CompareTest, ChecksumDriftFailsInEitherDirection) {
  const auto baseline = Parse(RecordLine("b", "x", 2.0, 0.5, 2.0));
  EXPECT_TRUE(CompareBenchRecords(
                  baseline, Parse(RecordLine("b", "x", 3.0, 0.5, 2.0)),
                  options_)
                  .failed());
  EXPECT_TRUE(CompareBenchRecords(
                  baseline, Parse(RecordLine("b", "x", 1.0, 0.5, 2.0)),
                  options_)
                  .failed());
}

TEST_F(CompareTest, SmallDriftWithinToleranceIsClean) {
  const auto baseline = Parse(RecordLine("b", "x", 2.0, 0.80, 2.0));
  const auto current = Parse(RecordLine("b", "x", 2.05, 0.78, 2.04));
  EXPECT_FALSE(CompareBenchRecords(baseline, current, options_).failed());
}

TEST_F(CompareTest, MissingRecordFailsAddedRecordDoesNot) {
  const auto two = Parse(RecordLine("b", "x", 1.0, 0.5, 2.0) +
                         RecordLine("b", "y", 1.0, 0.5, 2.0));
  const auto one = Parse(RecordLine("b", "x", 1.0, 0.5, 2.0));
  // Baseline record vanished from current: red (a bench silently dropped).
  const auto missing = CompareBenchRecords(two, one, options_);
  EXPECT_TRUE(missing.failed());
  // Current grew a record: informational only.
  const auto added = CompareBenchRecords(one, two, options_);
  EXPECT_FALSE(added.failed()) << added.ToString();
  bool saw_added = false;
  for (const auto& f : added.findings) {
    saw_added = saw_added || f.kind == Finding::Kind::kAddedRecord;
  }
  EXPECT_TRUE(saw_added);
}

TEST_F(CompareTest, MissingMetricFails) {
  const auto baseline = Parse(RecordLine("b", "x", 1.0, 0.5, 2.0));
  auto current = baseline;
  current.front().metrics.erase("win_rate");
  EXPECT_TRUE(CompareBenchRecords(baseline, current, options_).failed());
}

TEST_F(CompareTest, PerfInflationOnlyFailsWithCheckPerf) {
  auto baseline = Parse(RecordLine("b", "x", 1.0, 0.5, 2.0));
  auto current = baseline;
  current.front().perf["seconds"] = baseline.front().perf["seconds"] * 3.0;
  EXPECT_FALSE(CompareBenchRecords(baseline, current, options_).failed());
  options_.check_perf = true;
  EXPECT_TRUE(CompareBenchRecords(baseline, current, options_).failed());
  // Perf getting faster is never red.
  current.front().perf["seconds"] = baseline.front().perf["seconds"] / 3.0;
  EXPECT_FALSE(CompareBenchRecords(baseline, current, options_).failed());
}

TEST_F(CompareTest, LatencyHistogramP99InflationFailsUnderCheckPerf) {
  auto baseline = Parse(RecordLine("b", "x", 1.0, 0.5, 2.0));
  auto current = baseline;
  baseline.front().perf["hist.recommend.latency.p99_ns"] = 1000.0;
  current.front().perf["hist.recommend.latency.p99_ns"] = 5000.0;
  options_.check_perf = true;
  const auto report = CompareBenchRecords(baseline, current, options_);
  EXPECT_TRUE(report.failed()) << report.ToString();
}

// --- CLI end to end: golden pairs on disk ----------------------------------

TEST(RunBenchCompareTest, IdenticalFilesExitZero) {
  const std::string run = RecordLine("b", "x", 1.0, 0.75, 2.0);
  const auto a = WriteTempFile("bc_base.json", run);
  const auto b = WriteTempFile("bc_same.json", run);
  std::string output;
  EXPECT_EQ(RunBenchCompare({a, b}, &output), 0);
  EXPECT_NE(output.find("OK"), std::string::npos) << output;
}

TEST(RunBenchCompareTest, DegradedRmseExitsOne) {
  const auto a =
      WriteTempFile("bc_base2.json", RecordLine("b", "x", 1.0, 0.75, 2.0));
  const auto b =
      WriteTempFile("bc_bad2.json", RecordLine("b", "x", 1.0, 0.75, 3.0));
  std::string output;
  EXPECT_EQ(RunBenchCompare({a, b}, &output), 1);
  EXPECT_NE(output.find("rmse_best"), std::string::npos) << output;
}

TEST(RunBenchCompareTest, InflatedLatencyExitsOneOnlyWithCheckPerf) {
  const std::string stages =
      "{\"bench\":\"serve\",\"params\":{},\"seconds\":1,\"checksum\":1,"
      "\"stages\":{\"counters\":{},\"spans_seconds\":{},"
      "\"histograms\":{\"recommend.latency\":{\"count\":5,\"sum_ns\":50,"
      "\"max_ns\":%d,\"p50_ns\":5,\"p90_ns\":8,\"p99_ns\":%d}}}}\n";
  char base_line[512];
  char cur_line[512];
  std::snprintf(base_line, sizeof(base_line), stages.c_str(), 10, 10);
  std::snprintf(cur_line, sizeof(cur_line), stages.c_str(), 90, 90);
  const auto a = WriteTempFile("bc_lat_base.json", base_line);
  const auto b = WriteTempFile("bc_lat_cur.json", cur_line);
  EXPECT_EQ(RunBenchCompare({a, b}, nullptr), 0);
  std::string output;
  EXPECT_EQ(RunBenchCompare({a, b, "--check-perf"}, &output), 1);
  EXPECT_NE(output.find("p99"), std::string::npos) << output;
}

TEST(RunBenchCompareTest, WiderToleranceAbsorbsTheSameDelta) {
  const auto a =
      WriteTempFile("bc_tol_base.json", RecordLine("b", "x", 1.0, 0.75, 2.0));
  const auto b =
      WriteTempFile("bc_tol_cur.json", RecordLine("b", "x", 1.0, 0.75, 2.3));
  EXPECT_EQ(RunBenchCompare({a, b}, nullptr), 1);
  EXPECT_EQ(RunBenchCompare({a, b, "--rel-tol", "0.5"}, nullptr), 0);
}

TEST(RunBenchCompareTest, MalformedInputsExitTwo) {
  const auto good =
      WriteTempFile("bc_ok.json", RecordLine("b", "x", 1.0, 0.75, 2.0));
  const auto bad = WriteTempFile("bc_hostile.json", "{\"bench\": [}\n");
  std::string output;
  EXPECT_EQ(RunBenchCompare({good, bad}, &output), 2);
  EXPECT_EQ(RunBenchCompare({good, "/nonexistent/nope.json"}, nullptr), 2);
  EXPECT_EQ(RunBenchCompare({good}, nullptr), 2);            // one path
  EXPECT_EQ(RunBenchCompare({}, nullptr), 2);                // no paths
  EXPECT_EQ(RunBenchCompare({good, good, "--frobnicate"}, nullptr), 2);
  EXPECT_EQ(RunBenchCompare({good, good, "--rel-tol"}, nullptr), 2);
  EXPECT_EQ(RunBenchCompare({good, good, "--rel-tol", "bogus"}, nullptr), 2);
}

}  // namespace
}  // namespace adarts::tools
