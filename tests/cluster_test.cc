#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "cluster/clustering.h"
#include "cluster/incremental.h"
#include "cluster/kshape.h"
#include "common/rng.h"
#include "tests/test_util.h"

namespace adarts::cluster {
namespace {

using ::adarts::testing::MakeSine;

/// Two clearly distinct families: slow sines and fast sines with opposite
/// phase structure.
std::vector<ts::TimeSeries> TwoFamilies(std::size_t per_family,
                                        std::size_t length = 96) {
  std::vector<ts::TimeSeries> out;
  for (std::size_t i = 0; i < per_family; ++i) {
    out.push_back(MakeSine(length, 32.0, 0.05, 100 + i));
  }
  for (std::size_t i = 0; i < per_family; ++i) {
    out.push_back(MakeSine(length, 7.0, 0.05, 200 + i));
  }
  return out;
}

TEST(ClusteringStructTest, AssignmentsInvertClusters) {
  Clustering c;
  c.clusters = {{0, 2}, {1, 3}};
  const auto a = c.Assignments(4);
  EXPECT_EQ(a, (std::vector<std::size_t>{0, 1, 0, 1}));
}

TEST(CorrelationMatrixTest, SymmetricUnitDiagonal) {
  const auto series = TwoFamilies(3);
  const la::Matrix corr = PairwiseCorrelationMatrix(series);
  for (std::size_t i = 0; i < series.size(); ++i) {
    EXPECT_DOUBLE_EQ(corr(i, i), 1.0);
    for (std::size_t j = 0; j < series.size(); ++j) {
      EXPECT_DOUBLE_EQ(corr(i, j), corr(j, i));
    }
  }
}

TEST(ClusterAvgCorrelationTest, SingletonIsOneAndCoherentClusterHigh) {
  const auto series = TwoFamilies(4);
  const la::Matrix corr = PairwiseCorrelationMatrix(series);
  EXPECT_DOUBLE_EQ(ClusterAvgCorrelation({0}, corr), 1.0);
  // Same-family cluster: high correlation. Mixed: lower.
  const double same = ClusterAvgCorrelation({0, 1, 2, 3}, corr);
  const double mixed = ClusterAvgCorrelation({0, 1, 4, 5}, corr);
  EXPECT_GT(same, 0.8);
  EXPECT_GT(same, mixed);
}

TEST(CorrelationGainTest, PrefersCoherentMerges) {
  const auto series = TwoFamilies(4);
  const la::Matrix corr = PairwiseCorrelationMatrix(series);
  const double gain_same = CorrelationGain({0, 1}, {2, 3}, corr, series.size());
  const double gain_mixed = CorrelationGain({0, 1}, {4, 5}, corr, series.size());
  EXPECT_GT(gain_same, gain_mixed);
}

TEST(KShapeTest, SeparatesTwoFamilies) {
  const auto series = TwoFamilies(6);
  KShapeOptions opts;
  opts.k = 2;
  auto clustering = KShapeClustering(series, opts);
  ASSERT_TRUE(clustering.ok());
  ASSERT_EQ(clustering->NumClusters(), 2u);
  // Each cluster should be family-pure.
  for (const auto& cluster : clustering->clusters) {
    std::size_t fam0 = 0;
    for (std::size_t i : cluster) fam0 += i < 6 ? 1 : 0;
    EXPECT_TRUE(fam0 == 0 || fam0 == cluster.size())
        << "mixed cluster of size " << cluster.size();
  }
}

TEST(KShapeTest, EverySeriesAssignedExactlyOnce) {
  const auto series = TwoFamilies(5);
  KShapeOptions opts;
  opts.k = 3;
  auto clustering = KShapeClustering(series, opts);
  ASSERT_TRUE(clustering.ok());
  std::set<std::size_t> seen;
  for (const auto& cluster : clustering->clusters) {
    for (std::size_t i : cluster) {
      EXPECT_TRUE(seen.insert(i).second);
    }
  }
  EXPECT_EQ(seen.size(), series.size());
}

TEST(KShapeTest, RejectsEmptyInput) {
  EXPECT_FALSE(KShapeClustering({}, {}).ok());
}

TEST(KShapeTest, ClampsKToSeriesCount) {
  const std::vector<ts::TimeSeries> series = {MakeSine(64, 8.0),
                                              MakeSine(64, 9.0)};
  KShapeOptions opts;
  opts.k = 10;
  auto clustering = KShapeClustering(series, opts);
  ASSERT_TRUE(clustering.ok());
  EXPECT_LE(clustering->NumClusters(), 2u);
}

TEST(KShapeVariantsTest, GridSearchReturnsReasonableClusterCount) {
  const auto series = TwoFamilies(5);
  const la::Matrix corr = PairwiseCorrelationMatrix(series);
  auto clustering = KShapeGridSearch(series, 6, corr);
  ASSERT_TRUE(clustering.ok());
  EXPECT_GE(clustering->NumClusters(), 2u);
  EXPECT_LE(clustering->NumClusters(), 6u);
}

TEST(KShapeVariantsTest, IterativeSplitReachesThreshold) {
  const auto series = TwoFamilies(5);
  const la::Matrix corr = PairwiseCorrelationMatrix(series);
  auto clustering = KShapeIterativeSplit(series, 0.7, corr);
  ASSERT_TRUE(clustering.ok());
  for (const auto& cluster : clustering->clusters) {
    EXPECT_GE(ClusterAvgCorrelation(cluster, corr), 0.7)
        << "cluster size " << cluster.size();
  }
}

TEST(IncrementalClusteringTest, MeetsCorrelationFloor) {
  const auto series = TwoFamilies(6);
  IncrementalOptions opts;
  opts.correlation_threshold = 0.75;
  auto clustering = IncrementalClustering(series, opts);
  ASSERT_TRUE(clustering.ok());
  const la::Matrix corr = PairwiseCorrelationMatrix(series);
  // Phase 1 guarantees the threshold; phase-2 merges may relax it down to
  // the slack floor, never below.
  const double floor = opts.merge_correlation_slack * opts.correlation_threshold;
  for (const auto& cluster : clustering->clusters) {
    if (cluster.size() < 2) continue;
    EXPECT_GE(ClusterAvgCorrelation(cluster, corr), floor);
  }
}

TEST(IncrementalClusteringTest, CoversAllSeriesOnce) {
  const auto series = TwoFamilies(7);
  auto clustering = IncrementalClustering(series, {});
  ASSERT_TRUE(clustering.ok());
  std::set<std::size_t> seen;
  for (const auto& cluster : clustering->clusters) {
    for (std::size_t i : cluster) EXPECT_TRUE(seen.insert(i).second);
  }
  EXPECT_EQ(seen.size(), series.size());
}

TEST(IncrementalClusteringTest, MergePhaseAbsorbsNoisySingletons) {
  // The merge phase is what distinguishes incremental clustering from plain
  // iterative splitting (Fig. 11b: iterative explodes the cluster count):
  // noisy outlier series that pure splitting isolates forever are folded
  // back into their family when the correlation gain allows it.
  std::vector<ts::TimeSeries> series;
  for (std::size_t i = 0; i < 10; ++i) {
    series.push_back(MakeSine(96, 16.0, 0.05, 500 + i));  // clean family
  }
  for (std::size_t i = 0; i < 4; ++i) {
    series.push_back(MakeSine(96, 16.0, 0.9, 600 + i));  // noisy cousins
  }
  const la::Matrix corr = PairwiseCorrelationMatrix(series);
  IncrementalOptions opts;
  opts.correlation_threshold = 0.85;
  opts.merge_correlation_slack = 0.7;
  opts.small_cluster_size = 4;
  auto incremental = IncrementalClustering(series, opts);
  auto iterative = KShapeIterativeSplit(series, 0.85, corr);
  ASSERT_TRUE(incremental.ok());
  ASSERT_TRUE(iterative.ok());
  EXPECT_LT(incremental->NumClusters(), iterative->NumClusters());
}

TEST(IncrementalClusteringTest, HighlyCorrelatedCorpusStaysOneCluster) {
  // All series nearly identical: no split should happen.
  std::vector<ts::TimeSeries> series;
  for (std::size_t i = 0; i < 8; ++i) {
    series.push_back(MakeSine(96, 24.0, 0.01, 400 + i));
  }
  auto clustering = IncrementalClustering(series, {});
  ASSERT_TRUE(clustering.ok());
  EXPECT_EQ(clustering->NumClusters(), 1u);
}

}  // namespace
}  // namespace adarts::cluster
