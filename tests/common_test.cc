#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"

namespace adarts {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad input");
}

TEST(StatusTest, AllFactoryMethodsProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("").code(), Status::OutOfRange("").code(),
      Status::NotFound("").code(),        Status::AlreadyExists("").code(),
      Status::FailedPrecondition("").code(),
      Status::NumericalError("").code(),  Status::NotImplemented("").code(),
      Status::Internal("").code()};
  EXPECT_EQ(codes.size(), 8u);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> r = Status::OK();  // programming error: flagged, not UB
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

Result<int> Doubler(Result<int> in) {
  ADARTS_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacroPropagates) {
  EXPECT_EQ(Doubler(21).value(), 42);
  EXPECT_EQ(Doubler(Status::OutOfRange("nope")).status().code(),
            StatusCode::kOutOfRange);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(10);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, NormalMomentsRoughlyCorrect) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(12);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / 20000.0, 0.3, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(13);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(14);
  const auto sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (std::size_t i : sample) EXPECT_LT(i, 100u);
}

TEST(RngTest, SampleClampsOversizedRequest) {
  Rng rng(15);
  EXPECT_EQ(rng.SampleWithoutReplacement(5, 50).size(), 5u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(16);
  Rng child = a.Fork();
  EXPECT_NE(a.NextU64(), child.NextU64());
}

TEST(RngTest, ForkedStreamIsFixedAtForkTime) {
  // A child's stream is fully determined the moment it forks: draining the
  // parent afterwards must not change what the child produces. This is the
  // property the parallel training paths rely on when they fork per-task
  // generators up front in index order.
  Rng parent1(23);
  Rng child1 = parent1.Fork();
  for (int i = 0; i < 100; ++i) parent1.NextU64();

  Rng parent2(23);
  Rng child2 = parent2.Fork();
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(child1.NextU64(), child2.NextU64());
  }
}

TEST(RngTest, SiblingForksProduceDistinctStreams) {
  Rng parent(31);
  std::vector<Rng> children;
  for (int i = 0; i < 16; ++i) children.push_back(parent.Fork());
  // First outputs of all children and of the drained parent are pairwise
  // distinct — 17 collisions-free draws out of 2^64 values.
  std::set<std::uint64_t> firsts;
  for (Rng& c : children) firsts.insert(c.NextU64());
  firsts.insert(parent.NextU64());
  EXPECT_EQ(firsts.size(), 17u);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch w;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  EXPECT_GE(w.ElapsedSeconds(), 0.0);
  EXPECT_GE(w.ElapsedMillis(), w.ElapsedSeconds() * 1000.0 * 0.5);
}

}  // namespace
}  // namespace adarts
