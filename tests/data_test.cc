#include <gtest/gtest.h>

#include "cluster/clustering.h"
#include "data/forecast_data.h"
#include "data/generators.h"
#include "ts/acf.h"
#include "ts/fft.h"

namespace adarts::data {
namespace {

GeneratorOptions SmallOpts() {
  GeneratorOptions opts;
  opts.num_series = 10;
  opts.length = 192;
  return opts;
}

class CategoryTest : public ::testing::TestWithParam<Category> {};

TEST_P(CategoryTest, GeneratesRequestedShape) {
  const auto series = GenerateCategory(GetParam(), SmallOpts());
  ASSERT_EQ(series.size(), 10u);
  for (const auto& s : series) {
    EXPECT_EQ(s.length(), 192u);
    EXPECT_FALSE(s.HasMissing());
    EXPECT_FALSE(s.name().empty());
  }
}

TEST_P(CategoryTest, DeterministicForSameOptions) {
  const auto a = GenerateCategory(GetParam(), SmallOpts());
  const auto b = GenerateCategory(GetParam(), SmallOpts());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].values(), b[i].values());
  }
}

TEST_P(CategoryTest, VariantsDiffer) {
  GeneratorOptions v0 = SmallOpts();
  GeneratorOptions v1 = SmallOpts();
  v1.variant = 1;
  const auto a = GenerateCategory(GetParam(), v0);
  const auto b = GenerateCategory(GetParam(), v1);
  EXPECT_NE(a[0].values(), b[0].values());
}

INSTANTIATE_TEST_SUITE_P(
    AllCategories, CategoryTest, ::testing::ValuesIn(AllCategories()),
    [](const ::testing::TestParamInfo<Category>& info) {
      return std::string(CategoryToString(info.param));
    });

TEST(CategoryTraitsTest, ClimateIsHighlyCorrelated) {
  const auto climate = GenerateCategory(Category::kClimate, SmallOpts());
  const la::Matrix corr = cluster::PairwiseCorrelationMatrix(climate);
  double total = 0.0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < climate.size(); ++i) {
    for (std::size_t j = i + 1; j < climate.size(); ++j) {
      total += corr(i, j);
      ++pairs;
    }
  }
  EXPECT_GT(total / static_cast<double>(pairs), 0.9);
}

TEST(CategoryTraitsTest, MotionIsWeaklyCorrelated) {
  // Variant 1 models independent subjects (variant 0 is a coupled
  // multi-sensor rig on one body and is legitimately correlated).
  GeneratorOptions opts = SmallOpts();
  opts.variant = 1;
  const auto motion = GenerateCategory(Category::kMotion, opts);
  const la::Matrix corr = cluster::PairwiseCorrelationMatrix(motion);
  double total = 0.0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < motion.size(); ++i) {
    for (std::size_t j = i + 1; j < motion.size(); ++j) {
      total += std::fabs(corr(i, j));
      ++pairs;
    }
  }
  EXPECT_LT(total / static_cast<double>(pairs), 0.4);
}

TEST(CategoryTraitsTest, PowerAndClimateArePeriodic) {
  for (Category c : {Category::kPower, Category::kClimate}) {
    const auto series = GenerateCategory(c, SmallOpts());
    const double period = ts::EstimatePeriod(series[0].values());
    EXPECT_GT(period, 4.0) << CategoryToString(c);
    EXPECT_LT(period, 96.0) << CategoryToString(c);
  }
}

TEST(CategoryTraitsTest, WaterHasOutliers) {
  GeneratorOptions opts = SmallOpts();
  opts.length = 512;
  const auto water = GenerateCategory(Category::kWater, opts);
  // The underlying discharge trend is smooth (tiny increments); anomaly
  // spikes show up as huge jumps in the differenced series.
  bool found_outlier = false;
  for (const auto& s : water) {
    la::Vector diffs(s.length() - 1);
    for (std::size_t t = 1; t < s.length(); ++t) {
      diffs[t - 1] = s.value(t) - s.value(t - 1);
    }
    const double sd = la::StdDev(diffs);
    for (double d : diffs) {
      if (std::fabs(d - la::Mean(diffs)) > 3.5 * sd) {
        found_outlier = true;
        break;
      }
    }
  }
  EXPECT_TRUE(found_outlier);
}

TEST(CategoryTraitsTest, LightningHasMixedCorrelationSigns) {
  // Variant 2 is the mixed deployment (half synced, half independent).
  GeneratorOptions opts = SmallOpts();
  opts.num_series = 12;
  opts.length = 384;
  opts.variant = 2;
  const auto lightning = GenerateCategory(Category::kLightning, opts);
  const la::Matrix corr = cluster::PairwiseCorrelationMatrix(lightning);
  bool has_high = false, has_low = false;
  for (std::size_t i = 0; i < lightning.size(); ++i) {
    for (std::size_t j = i + 1; j < lightning.size(); ++j) {
      if (std::fabs(corr(i, j)) > 0.5) has_high = true;
      if (std::fabs(corr(i, j)) < 0.15) has_low = true;
    }
  }
  EXPECT_TRUE(has_high);
  EXPECT_TRUE(has_low);
}

TEST(CategoryTraitsTest, MedicalIsSpiky) {
  const auto medical = GenerateCategory(Category::kMedical, SmallOpts());
  // Excess kurtosis of a pulse train is clearly positive.
  const la::Vector& v = medical[0].values();
  const double mean = la::Mean(v);
  const double sd = la::StdDev(v);
  double kurt = 0.0;
  for (double x : v) kurt += std::pow((x - mean) / sd, 4.0);
  kurt = kurt / static_cast<double>(v.size()) - 3.0;
  EXPECT_GT(kurt, 1.0);
}

TEST(MixedCorpusTest, ContainsEveryCategory) {
  GeneratorOptions opts;
  opts.num_series = 4;
  opts.length = 128;
  const auto corpus = GenerateMixedCorpus(2, opts);
  EXPECT_EQ(corpus.size(), 6u * 2u * 4u);
}

TEST(ForecastDataTest, AllNamedDatasetsGenerate) {
  for (const std::string& name : ForecastDatasetNames()) {
    const auto series = GenerateForecastDataset(name, 5, 256, 1);
    ASSERT_EQ(series.size(), 5u) << name;
    for (const auto& s : series) {
      EXPECT_EQ(s.length(), 256u);
    }
  }
  EXPECT_EQ(ForecastDatasetNames().size(), 7u);
}

TEST(ForecastDataTest, SeasonalDatasetsHaveDetectablePeriod) {
  const auto solar = GenerateForecastDataset("Solar", 3, 512, 2);
  const la::Vector acf = ts::Acf(solar[0].values(), 30);
  EXPECT_GT(acf[24], 0.4);  // daily cycle
}

TEST(ForecastDataTest, DeterministicPerSeed) {
  const auto a = GenerateForecastDataset("ATM", 3, 128, 7);
  const auto b = GenerateForecastDataset("ATM", 3, 128, 7);
  EXPECT_EQ(a[0].values(), b[0].values());
  const auto c = GenerateForecastDataset("ATM", 3, 128, 8);
  EXPECT_NE(a[0].values(), c[0].values());
}

}  // namespace
}  // namespace adarts::data
