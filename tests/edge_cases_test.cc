// Corner-case coverage across modules: degenerate inputs, formula spot
// checks, and API behaviours not exercised by the main suites.

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "cluster/clustering.h"
#include "common/rng.h"
#include "forecast/forecaster.h"
#include "impute/imputer.h"
#include "ml/dataset.h"
#include "tests/test_util.h"
#include "ts/correlation.h"
#include "ts/missing.h"

namespace adarts {
namespace {

using ::adarts::testing::MakeBlobs;
using ::adarts::testing::MakeSine;

TEST(CorrelationGainTest, MatchesDefinitionOneFormula) {
  // Hand-check Eq. 1 on a tiny configuration.
  std::vector<ts::TimeSeries> series = {
      MakeSine(64, 16.0, 0.0, 1), MakeSine(64, 16.0, 0.0, 1),  // identical
      MakeSine(64, 5.0, 0.3, 9)};
  const la::Matrix corr = cluster::PairwiseCorrelationMatrix(series);
  const std::vector<std::size_t> a = {0};
  const std::vector<std::size_t> b = {1};
  const double m = 3.0;
  const double rho_merged = cluster::ClusterAvgCorrelation({0, 1}, corr);
  const double expected =
      (1.0 / (2.0 * m)) * (rho_merged - (1.0 * 1.0) / m);  // singletons: rho=1
  EXPECT_NEAR(cluster::CorrelationGain(a, b, corr, 3), expected, 1e-12);
}

TEST(NccTest, SelfCorrelationPeaksAtZeroShift) {
  Rng rng(42);
  la::Vector v(50);
  for (double& x : v) x = rng.Normal(0, 1);
  const ts::SbdAlignment al = ts::BestAlignment(v, v);
  EXPECT_EQ(al.shift, 0);
  EXPECT_NEAR(al.ncc, 1.0, 1e-9);
}

TEST(NccTest, AntiCorrelatedSeriesHasNegativePeakAtZero) {
  la::Vector a = MakeSine(64, 16.0).values();
  la::Vector b = a;
  for (double& x : b) x = -x;
  const la::Vector ncc = ts::NccAllLags(a, b);
  // Zero-shift entry is at index n-1.
  EXPECT_NEAR(ncc[63], -1.0, 1e-9);
}

TEST(GrowingPartialSetsTest, RoughlyStratifiedAtEveryStage) {
  const ml::Dataset d = MakeBlobs(3, 30, 2, 7);
  Rng rng(8);
  auto sets = ml::GrowingPartialSets(d, 3, &rng);
  ASSERT_TRUE(sets.ok());
  for (const auto& s : *sets) {
    const auto counts = s.ClassCounts();
    const auto [lo, hi] = std::minmax_element(counts.begin(), counts.end());
    EXPECT_LE(*hi - *lo, 2u);  // round-robin keeps classes within 2
  }
}

TEST(SeasonalNaiveTest, AperiodicSeriesFallsBackToLastValue) {
  Rng rng(9);
  la::Vector noise(80);
  for (double& x : noise) x = rng.Normal(0, 1);
  auto pred = forecast::CreateSeasonalNaive()->Forecast(noise, 4);
  ASSERT_TRUE(pred.ok());
  // Aperiodic: every horizon step repeats based on the detected (possibly
  // spurious) period or the last value; all outputs must be finite and
  // drawn from the history's value range.
  const double lo = *std::min_element(noise.begin(), noise.end());
  const double hi = *std::max_element(noise.begin(), noise.end());
  for (double v : *pred) {
    EXPECT_GE(v, lo - 1e-9);
    EXPECT_LE(v, hi + 1e-9);
  }
}

TEST(HoltWintersTest, ShortHistoryDegradesToHoltLinear) {
  // History shorter than two detected periods must not crash.
  la::Vector short_history = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  auto pred = forecast::CreateHoltWinters()->Forecast(short_history, 3);
  ASSERT_TRUE(pred.ok());
  EXPECT_EQ(pred->size(), 3u);
}

TEST(ImputerEdgeTest, AllSeriesConstant) {
  // Constant series with a gap: every imputer must return finite values
  // (the constant is the only sensible fill).
  std::vector<ts::TimeSeries> set;
  for (int i = 0; i < 3; ++i) {
    set.emplace_back(la::Vector(64, 5.0));
  }
  Rng rng(10);
  ASSERT_TRUE(ts::InjectSingleBlock(6, &rng, &set[0]).ok());
  for (impute::Algorithm a : impute::AllAlgorithms()) {
    auto repaired = impute::CreateImputer(a)->ImputeSet(set);
    ASSERT_TRUE(repaired.ok()) << impute::AlgorithmToString(a);
    for (std::size_t t = 0; t < 64; ++t) {
      EXPECT_TRUE(std::isfinite((*repaired)[0].value(t)))
          << impute::AlgorithmToString(a);
    }
  }
}

TEST(ImputerEdgeTest, GapAtTheVeryStart) {
  // Leading gaps have no left anchor; every imputer must still fill them.
  std::vector<ts::TimeSeries> set = {MakeSine(64, 16.0, 0.0, 11),
                                     MakeSine(64, 16.0, 0.0, 12)};
  for (std::size_t t = 0; t < 6; ++t) set[0].SetMissing(t, true);
  for (impute::Algorithm a : impute::AllAlgorithms()) {
    auto repaired = impute::CreateImputer(a)->ImputeSet(set);
    ASSERT_TRUE(repaired.ok()) << impute::AlgorithmToString(a);
    EXPECT_FALSE((*repaired)[0].HasMissing()) << impute::AlgorithmToString(a);
  }
}

TEST(ImputerEdgeTest, AllMissingSeriesIsRejectedByEveryImputer) {
  // One series with zero observations: no algorithm can anchor a repair,
  // so every imputer must refuse with a clean InvalidArgument naming the
  // offending series — never crash or emit garbage.
  std::vector<ts::TimeSeries> set = {MakeSine(32, 8.0, 0.0, 21),
                                     MakeSine(32, 8.0, 0.0, 22)};
  for (std::size_t t = 0; t < 32; ++t) set[1].SetMissing(t, true);
  for (impute::Algorithm a : impute::AllAlgorithms()) {
    auto repaired = impute::CreateImputer(a)->ImputeSet(set);
    ASSERT_FALSE(repaired.ok()) << impute::AlgorithmToString(a);
    EXPECT_EQ(repaired.status().code(), StatusCode::kInvalidArgument)
        << impute::AlgorithmToString(a);
    EXPECT_NE(repaired.status().message().find("series 1"), std::string::npos)
        << impute::AlgorithmToString(a) << ": " << repaired.status();
  }
}

TEST(ImputerEdgeTest, NonFiniteObservedValueIsRejectedByEveryImputer) {
  std::vector<ts::TimeSeries> set = {MakeSine(32, 8.0, 0.0, 23),
                                     MakeSine(32, 8.0, 0.0, 24)};
  set[0].SetMissing(5, true);
  set[1].set_value(7, std::numeric_limits<double>::quiet_NaN());
  for (impute::Algorithm a : impute::AllAlgorithms()) {
    auto repaired = impute::CreateImputer(a)->ImputeSet(set);
    ASSERT_FALSE(repaired.ok()) << impute::AlgorithmToString(a);
    EXPECT_EQ(repaired.status().code(), StatusCode::kInvalidArgument)
        << impute::AlgorithmToString(a);
  }
}

TEST(ImputerEdgeTest, SinglePointSeries) {
  // A length-1 set is degenerate but well-formed; imputers must either
  // return it unchanged (nothing is missing) or refuse cleanly.
  std::vector<ts::TimeSeries> set = {ts::TimeSeries(la::Vector{3.5}),
                                     ts::TimeSeries(la::Vector{-1.0})};
  for (impute::Algorithm a : impute::AllAlgorithms()) {
    auto repaired = impute::CreateImputer(a)->ImputeSet(set);
    if (repaired.ok()) {
      ASSERT_EQ(repaired->size(), 2u) << impute::AlgorithmToString(a);
      EXPECT_EQ((*repaired)[0].value(0), 3.5) << impute::AlgorithmToString(a);
    } else {
      EXPECT_FALSE(repaired.status().message().empty())
          << impute::AlgorithmToString(a);
    }
  }
}

TEST(ImputerEdgeTest, SingleObservationRestMissing) {
  // 1 observed point out of 24: the thinnest input BuildMaskedMatrix
  // accepts. Every imputer must fill all gaps with finite values or refuse
  // cleanly — no NaN output, no crash.
  std::vector<ts::TimeSeries> set = {MakeSine(24, 8.0, 0.0, 25),
                                     MakeSine(24, 8.0, 0.0, 26)};
  for (std::size_t t = 0; t < 24; ++t) {
    if (t != 11) set[0].SetMissing(t, true);
  }
  for (impute::Algorithm a : impute::AllAlgorithms()) {
    auto repaired = impute::CreateImputer(a)->ImputeSet(set);
    if (!repaired.ok()) {
      EXPECT_FALSE(repaired.status().message().empty())
          << impute::AlgorithmToString(a);
      continue;
    }
    EXPECT_FALSE((*repaired)[0].HasMissing()) << impute::AlgorithmToString(a);
    for (std::size_t t = 0; t < 24; ++t) {
      EXPECT_TRUE(std::isfinite((*repaired)[0].value(t)))
          << impute::AlgorithmToString(a) << " at " << t;
    }
  }
}

TEST(ImputerEdgeTest, MissingBlockSpanningAlmostTheWholeSeries) {
  // A block gap longer than the observed remainder (only the endpoints
  // survive). Every imputer must bridge it with finite values or refuse.
  std::vector<ts::TimeSeries> set = {MakeSine(40, 10.0, 0.0, 27),
                                     MakeSine(40, 10.0, 0.0, 28)};
  for (std::size_t t = 1; t + 1 < 40; ++t) set[0].SetMissing(t, true);
  for (impute::Algorithm a : impute::AllAlgorithms()) {
    auto repaired = impute::CreateImputer(a)->ImputeSet(set);
    if (!repaired.ok()) {
      EXPECT_FALSE(repaired.status().message().empty())
          << impute::AlgorithmToString(a);
      continue;
    }
    EXPECT_FALSE((*repaired)[0].HasMissing()) << impute::AlgorithmToString(a);
    for (std::size_t t = 0; t < 40; ++t) {
      EXPECT_TRUE(std::isfinite((*repaired)[0].value(t)))
          << impute::AlgorithmToString(a) << " at " << t;
    }
  }
}

TEST(TimeSeriesEdgeTest, CreateRejectsNonFiniteObservedValues) {
  la::Vector values{1.0, std::numeric_limits<double>::infinity(), 3.0};
  auto bad = ts::TimeSeries::Create(values, {false, false, false});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.status().message().find("position 1"), std::string::npos);

  // The same value behind the mask is a legal placeholder.
  auto masked = ts::TimeSeries::Create(values, {false, true, false});
  ASSERT_TRUE(masked.ok()) << masked.status();
  EXPECT_TRUE(masked->IsMissing(1));

  auto mismatched = ts::TimeSeries::Create({1.0, 2.0}, {false});
  ASSERT_FALSE(mismatched.ok());
  EXPECT_EQ(mismatched.status().code(), StatusCode::kInvalidArgument);
}

TEST(MissingEdgeTest, BlockAtExactBounds) {
  ts::TimeSeries s(la::Vector(20, 1.0));
  EXPECT_TRUE(ts::InjectBlockAt(0, 20, &s).ok());     // whole series
  EXPECT_FALSE(ts::InjectBlockAt(15, 6, &s).ok());    // overruns the end
  EXPECT_EQ(s.MissingCount(), 20u);
}

TEST(DatasetEdgeTest, SingleClassDatasetSplits) {
  ml::Dataset d;
  d.num_classes = 1;
  for (int i = 0; i < 20; ++i) {
    d.features.push_back({static_cast<double>(i)});
    d.labels.push_back(0);
  }
  Rng rng(13);
  auto split = ml::StratifiedSplit(d, 0.7, &rng);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->train.size(), 14u);
  EXPECT_EQ(split->test.size(), 6u);
}

TEST(PearsonEdgeTest, DifferentLengthSeriesUsePrefix) {
  const ts::TimeSeries a = MakeSine(64, 16.0);
  const ts::TimeSeries b = MakeSine(32, 16.0);
  // Pearson over the common prefix of an identical generator is 1.
  EXPECT_NEAR(ts::Pearson(a, b), 1.0, 1e-9);
}

}  // namespace
}  // namespace adarts
