// Corner-case coverage across modules: degenerate inputs, formula spot
// checks, and API behaviours not exercised by the main suites.

#include <cmath>

#include <gtest/gtest.h>

#include "cluster/clustering.h"
#include "common/rng.h"
#include "forecast/forecaster.h"
#include "impute/imputer.h"
#include "ml/dataset.h"
#include "tests/test_util.h"
#include "ts/correlation.h"
#include "ts/missing.h"

namespace adarts {
namespace {

using ::adarts::testing::MakeBlobs;
using ::adarts::testing::MakeSine;

TEST(CorrelationGainTest, MatchesDefinitionOneFormula) {
  // Hand-check Eq. 1 on a tiny configuration.
  std::vector<ts::TimeSeries> series = {
      MakeSine(64, 16.0, 0.0, 1), MakeSine(64, 16.0, 0.0, 1),  // identical
      MakeSine(64, 5.0, 0.3, 9)};
  const la::Matrix corr = cluster::PairwiseCorrelationMatrix(series);
  const std::vector<std::size_t> a = {0};
  const std::vector<std::size_t> b = {1};
  const double m = 3.0;
  const double rho_merged = cluster::ClusterAvgCorrelation({0, 1}, corr);
  const double expected =
      (1.0 / (2.0 * m)) * (rho_merged - (1.0 * 1.0) / m);  // singletons: rho=1
  EXPECT_NEAR(cluster::CorrelationGain(a, b, corr, 3), expected, 1e-12);
}

TEST(NccTest, SelfCorrelationPeaksAtZeroShift) {
  Rng rng(42);
  la::Vector v(50);
  for (double& x : v) x = rng.Normal(0, 1);
  const ts::SbdAlignment al = ts::BestAlignment(v, v);
  EXPECT_EQ(al.shift, 0);
  EXPECT_NEAR(al.ncc, 1.0, 1e-9);
}

TEST(NccTest, AntiCorrelatedSeriesHasNegativePeakAtZero) {
  la::Vector a = MakeSine(64, 16.0).values();
  la::Vector b = a;
  for (double& x : b) x = -x;
  const la::Vector ncc = ts::NccAllLags(a, b);
  // Zero-shift entry is at index n-1.
  EXPECT_NEAR(ncc[63], -1.0, 1e-9);
}

TEST(GrowingPartialSetsTest, RoughlyStratifiedAtEveryStage) {
  const ml::Dataset d = MakeBlobs(3, 30, 2, 7);
  Rng rng(8);
  auto sets = ml::GrowingPartialSets(d, 3, &rng);
  ASSERT_TRUE(sets.ok());
  for (const auto& s : *sets) {
    const auto counts = s.ClassCounts();
    const auto [lo, hi] = std::minmax_element(counts.begin(), counts.end());
    EXPECT_LE(*hi - *lo, 2u);  // round-robin keeps classes within 2
  }
}

TEST(SeasonalNaiveTest, AperiodicSeriesFallsBackToLastValue) {
  Rng rng(9);
  la::Vector noise(80);
  for (double& x : noise) x = rng.Normal(0, 1);
  auto pred = forecast::CreateSeasonalNaive()->Forecast(noise, 4);
  ASSERT_TRUE(pred.ok());
  // Aperiodic: every horizon step repeats based on the detected (possibly
  // spurious) period or the last value; all outputs must be finite and
  // drawn from the history's value range.
  const double lo = *std::min_element(noise.begin(), noise.end());
  const double hi = *std::max_element(noise.begin(), noise.end());
  for (double v : *pred) {
    EXPECT_GE(v, lo - 1e-9);
    EXPECT_LE(v, hi + 1e-9);
  }
}

TEST(HoltWintersTest, ShortHistoryDegradesToHoltLinear) {
  // History shorter than two detected periods must not crash.
  la::Vector short_history = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  auto pred = forecast::CreateHoltWinters()->Forecast(short_history, 3);
  ASSERT_TRUE(pred.ok());
  EXPECT_EQ(pred->size(), 3u);
}

TEST(ImputerEdgeTest, AllSeriesConstant) {
  // Constant series with a gap: every imputer must return finite values
  // (the constant is the only sensible fill).
  std::vector<ts::TimeSeries> set;
  for (int i = 0; i < 3; ++i) {
    set.emplace_back(la::Vector(64, 5.0));
  }
  Rng rng(10);
  ASSERT_TRUE(ts::InjectSingleBlock(6, &rng, &set[0]).ok());
  for (impute::Algorithm a : impute::AllAlgorithms()) {
    auto repaired = impute::CreateImputer(a)->ImputeSet(set);
    ASSERT_TRUE(repaired.ok()) << impute::AlgorithmToString(a);
    for (std::size_t t = 0; t < 64; ++t) {
      EXPECT_TRUE(std::isfinite((*repaired)[0].value(t)))
          << impute::AlgorithmToString(a);
    }
  }
}

TEST(ImputerEdgeTest, GapAtTheVeryStart) {
  // Leading gaps have no left anchor; every imputer must still fill them.
  std::vector<ts::TimeSeries> set = {MakeSine(64, 16.0, 0.0, 11),
                                     MakeSine(64, 16.0, 0.0, 12)};
  for (std::size_t t = 0; t < 6; ++t) set[0].SetMissing(t, true);
  for (impute::Algorithm a : impute::AllAlgorithms()) {
    auto repaired = impute::CreateImputer(a)->ImputeSet(set);
    ASSERT_TRUE(repaired.ok()) << impute::AlgorithmToString(a);
    EXPECT_FALSE((*repaired)[0].HasMissing()) << impute::AlgorithmToString(a);
  }
}

TEST(MissingEdgeTest, BlockAtExactBounds) {
  ts::TimeSeries s(la::Vector(20, 1.0));
  EXPECT_TRUE(ts::InjectBlockAt(0, 20, &s).ok());     // whole series
  EXPECT_FALSE(ts::InjectBlockAt(15, 6, &s).ok());    // overruns the end
  EXPECT_EQ(s.MissingCount(), 20u);
}

TEST(DatasetEdgeTest, SingleClassDatasetSplits) {
  ml::Dataset d;
  d.num_classes = 1;
  for (int i = 0; i < 20; ++i) {
    d.features.push_back({static_cast<double>(i)});
    d.labels.push_back(0);
  }
  Rng rng(13);
  auto split = ml::StratifiedSplit(d, 0.7, &rng);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->train.size(), 14u);
  EXPECT_EQ(split->test.size(), 6u);
}

TEST(PearsonEdgeTest, DifferentLengthSeriesUsePrefix) {
  const ts::TimeSeries a = MakeSine(64, 16.0);
  const ts::TimeSeries b = MakeSine(32, 16.0);
  // Pearson over the common prefix of an identical generator is 1.
  EXPECT_NEAR(ts::Pearson(a, b), 1.0, 1e-9);
}

}  // namespace
}  // namespace adarts
