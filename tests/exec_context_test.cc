// Tests of the ExecContext spine (DESIGN.md §8): context defaults, the
// lazy one-pool-per-context contract (a whole Train builds exactly one
// ThreadPool), the Metrics registry and StageMetrics snapshots, the
// deterministic RNG fork policy, cancel-aware ParallelFor on a context,
// bit-identity of the deprecated num_threads/cancel shims against an
// explicit context, and cancellation/deadline propagation through
// RecommendBatchPartial.

#include <atomic>
#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "adarts/adarts.h"
#include "automl/model_race.h"
#include "common/cancellation.h"
#include "common/exec_context.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "data/generators.h"
#include "tests/test_util.h"
#include "ts/missing.h"

namespace adarts {
namespace {

using ::adarts::testing::MakeBlobs;

// ---------------------------------------------------------------------------
// Context defaults and the lazy pool.

TEST(ExecContextTest, DefaultsAreSerialUncancelledAndMetricFree) {
  ExecContext ctx;
  EXPECT_EQ(ctx.num_threads(), 0u);
  EXPECT_EQ(ctx.cancel(), nullptr);
  EXPECT_FALSE(ctx.cancelled());
  EXPECT_TRUE(ctx.CheckCancelled("anything").ok());
  EXPECT_FALSE(ctx.pool_created());
  EXPECT_TRUE(ctx.metrics().Snapshot().empty());
}

TEST(ExecContextTest, PoolIsConstructedLazilyAndExactlyOnce) {
  ExecContext ctx(3);
  EXPECT_FALSE(ctx.pool_created());
  const std::uint64_t before = ThreadPool::TotalCreated();
  ThreadPool& first = ctx.pool();
  ThreadPool& second = ctx.pool();
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(first.size(), 3u);
  EXPECT_TRUE(ctx.pool_created());
  EXPECT_EQ(ThreadPool::TotalCreated() - before, 1u);
}

TEST(ExecContextTest, CheckCancelledReflectsTheToken) {
  CancellationToken token;
  ExecContext ctx(1, &token);
  EXPECT_TRUE(ctx.CheckCancelled("phase").ok());
  EXPECT_FALSE(ctx.cancelled());
  token.Cancel();
  EXPECT_TRUE(ctx.cancelled());
  Status s = ctx.CheckCancelled("phase");
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
  EXPECT_NE(s.message().find("phase"), std::string::npos);
  ctx.set_cancel(nullptr);
  EXPECT_TRUE(ctx.CheckCancelled("phase").ok());
}

// ---------------------------------------------------------------------------
// ParallelFor on a context.

TEST(ExecContextParallelForTest, CoversEveryIndexExactlyOnce) {
  ExecContext ctx(4);
  constexpr std::size_t kN = 5000;
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(ctx, kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
  EXPECT_TRUE(ctx.pool_created());
}

TEST(ExecContextParallelForTest, SerialContextNeverConstructsThePool) {
  ExecContext ctx(1);
  std::vector<std::size_t> order;
  ParallelFor(ctx, 5, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(order[i], i);
  EXPECT_FALSE(ctx.pool_created());
}

TEST(ExecContextParallelForTest, TinyLoopsStayInlineOnParallelContexts) {
  ExecContext ctx(4);
  int hits = 0;
  ParallelFor(ctx, 0, [&](std::size_t) { ++hits; });
  ParallelFor(ctx, 1, [&](std::size_t) { ++hits; });
  EXPECT_EQ(hits, 1);
  EXPECT_FALSE(ctx.pool_created());
}

TEST(ExecContextParallelForTest, ExpiredTokenSkipsEveryIteration) {
  CancellationToken token;
  token.Cancel();
  ExecContext ctx(testing::TestThreadCount(), &token);
  std::vector<int> touched(64, 0);
  ParallelFor(ctx, touched.size(), [&](std::size_t i) { touched[i] = 1; });
  for (int t : touched) EXPECT_EQ(t, 0);
  // The caller-side contract: re-check the token after the loop.
  EXPECT_EQ(ctx.CheckCancelled("after").code(), StatusCode::kCancelled);
}

// ---------------------------------------------------------------------------
// The Metrics registry and StageMetrics snapshots.

TEST(MetricsTest, CounterHandlesAreStableAndAccumulate) {
  Metrics metrics;
  MetricCounter* c = metrics.counter("race.pipelines_evaluated");
  EXPECT_EQ(c, metrics.counter("race.pipelines_evaluated"));
  c->Increment();
  c->Increment(4);
  metrics.Increment("race.pipelines_evaluated", 5);
  const StageMetrics snap = metrics.Snapshot();
  EXPECT_EQ(snap.Counter("race.pipelines_evaluated"), 10u);
  EXPECT_EQ(snap.Counter("no.such.counter"), 0u);
}

TEST(MetricsTest, SpansAccumulateAcrossRepeatedStages) {
  Metrics metrics;
  metrics.RecordSpanSeconds("train.race_seconds", 0.25);
  metrics.RecordSpanSeconds("train.race_seconds", 0.5);
  const StageMetrics snap = metrics.Snapshot();
  EXPECT_DOUBLE_EQ(snap.SpanSeconds("train.race_seconds"), 0.75);
  EXPECT_DOUBLE_EQ(snap.SpanSeconds("no.such.span"), 0.0);
  EXPECT_FALSE(snap.empty());
}

TEST(MetricsTest, ConcurrentIncrementsAreLockFreeAndLossless) {
  Metrics metrics;
  MetricCounter* c = metrics.counter("stress.hits");
  ThreadPool pool(testing::TestThreadCount());
  constexpr std::size_t kN = 20000;
  ParallelFor(&pool, kN, [&](std::size_t) { c->Increment(); });
  EXPECT_EQ(metrics.Snapshot().Counter("stress.hits"), kN);
}

TEST(MetricsTest, SnapshotSerializesToJsonAndText) {
  Metrics metrics;
  metrics.Increment("b.count", 2);
  metrics.Increment("a.count");
  metrics.RecordSpanSeconds("a.span_seconds", 1.5);
  const StageMetrics snap = metrics.Snapshot();
  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"counters\":{\"a.count\":1,\"b.count\":2}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"spans_seconds\":{\"a.span_seconds\":1.500000}"),
            std::string::npos)
      << json;
  const std::string text = snap.ToString();
  EXPECT_NE(text.find("a.count=1"), std::string::npos) << text;
  EXPECT_NE(text.find("b.count=2"), std::string::npos) << text;
  EXPECT_NE(text.find("a.span_seconds="), std::string::npos) << text;
}

TEST(MetricsTest, ToJsonEscapesHostileMetricNames) {
  // Metric names are plain identifiers today, but the JSON writer must not
  // emit broken output if a name ever carries quotes, backslashes, or
  // control characters (e.g. a name derived from user-provided series ids).
  Metrics metrics;
  metrics.Increment("weird\"name\\with\nstuff");
  metrics.RecordSpanSeconds("tab\there_seconds", 0.5);
  const std::string json = metrics.Snapshot().ToJson();
  EXPECT_NE(json.find("\"weird\\\"name\\\\with\\nstuff\":1"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"tab\\there_seconds\":0.500000"), std::string::npos)
      << json;
}

TEST(MetricsTest, StageTimerRecordsOnceAndToleratesNullRegistry) {
  Metrics metrics;
  {
    StageTimer timer(&metrics, "unit.test_seconds");
    timer.Stop();
    timer.Stop();  // idempotent: the destructor must not double-record
  }
  const StageMetrics snap = metrics.Snapshot();
  ASSERT_EQ(snap.spans_seconds.count("unit.test_seconds"), 1u);
  EXPECT_GE(snap.SpanSeconds("unit.test_seconds"), 0.0);
  StageTimer no_op(nullptr, "ignored");  // must not crash on destruction
}

// ---------------------------------------------------------------------------
// Deterministic RNG forking.

TEST(ExecContextTest, ForkRngsMatchesSequentialForksInIndexOrder) {
  Rng parent_a(42);
  Rng parent_b(42);
  std::vector<Rng> forked = ExecContext::ForkRngs(&parent_a, 6);
  ASSERT_EQ(forked.size(), 6u);
  for (std::size_t i = 0; i < forked.size(); ++i) {
    Rng manual = parent_b.Fork();
    for (int draw = 0; draw < 16; ++draw) {
      EXPECT_EQ(forked[i].NextU64(), manual.NextU64())
          << "child " << i << " draw " << draw;
    }
  }
  // Both parents consumed the same fork stream.
  EXPECT_EQ(parent_a.NextU64(), parent_b.NextU64());
}

// ---------------------------------------------------------------------------
// Whole-engine contracts: one pool per Train, populated TrainReport,
// deprecated shims bit-identical to an explicit context, and cancellation
// propagation through the batched inference path.

std::vector<ts::TimeSeries> TinyCorpus(std::size_t per_category = 10) {
  data::GeneratorOptions gopts;
  gopts.num_series = per_category;
  gopts.length = 144;
  std::vector<ts::TimeSeries> corpus;
  for (data::Category c : {data::Category::kClimate, data::Category::kMotion}) {
    for (auto& s : data::GenerateCategory(c, gopts)) {
      corpus.push_back(std::move(s));
    }
  }
  return corpus;
}

TrainOptions TinyTrainOptions() {
  TrainOptions opts;
  opts.labeling.algorithms = {impute::Algorithm::kCdRec,
                              impute::Algorithm::kTkcm,
                              impute::Algorithm::kLinearInterp};
  opts.race.num_seed_pipelines = 12;
  opts.race.num_partial_sets = 2;
  opts.race.num_folds = 2;
  // gamma = 0 removes the wall-clock term from the race score so two runs
  // can be compared bit-for-bit (as in threading_test).
  opts.race.gamma = 0.0;
  opts.race.seed = 11;
  opts.features.landmarks = 16;
  return opts;
}

ts::TimeSeries FaultyProbe(std::uint64_t seed) {
  data::GeneratorOptions gopts;
  gopts.num_series = 1;
  gopts.length = 144;
  gopts.seed = seed;
  auto set = data::GenerateCategory(data::Category::kClimate, gopts);
  Rng rng(seed + 1);
  EXPECT_TRUE(ts::InjectSingleBlock(12, &rng, &set[0]).ok());
  return std::move(set[0]);
}

TEST(ExecContextEngineTest, WholeTrainConstructsExactlyOnePool) {
  const auto corpus = TinyCorpus();
  const TrainOptions opts = TinyTrainOptions();
  ExecContext ctx(3);
  const std::uint64_t before = ThreadPool::TotalCreated();
  auto engine = Adarts::Train(corpus, opts, ctx);
  ASSERT_TRUE(engine.ok()) << engine.status();
  // Clustering, labeling, feature extraction, the race, and the committee
  // refits all ran — on one shared pool, constructed once.
  EXPECT_EQ(ThreadPool::TotalCreated() - before, 1u);
  EXPECT_TRUE(ctx.pool_created());

  // The run's StageMetrics snapshot landed in the train report.
  const StageMetrics& stages = engine->train_report().stages;
  ASSERT_FALSE(stages.empty());
  EXPECT_GT(stages.Counter("race.pipelines_evaluated"), 0u);
  EXPECT_EQ(stages.spans_seconds.count("train.labeling_seconds"), 1u);
  EXPECT_EQ(stages.spans_seconds.count("train.features_seconds"), 1u);
  EXPECT_EQ(stages.spans_seconds.count("train.race_seconds"), 1u);
  EXPECT_EQ(stages.spans_seconds.count("train.committee_seconds"), 1u);
  EXPECT_EQ(stages.spans_seconds.count("race.total_seconds"), 1u);
}

TEST(ExecContextEngineTest, DeprecatedShimsMatchExplicitContextBitForBit) {
  const auto corpus = TinyCorpus();
  const TrainOptions base = TinyTrainOptions();

  // Old surface: thread count carried in the deprecated options field.
  TrainOptions legacy_opts = base;
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  legacy_opts.num_threads = 3;
#pragma GCC diagnostic pop
  auto legacy = Adarts::Train(corpus, legacy_opts);
  ASSERT_TRUE(legacy.ok()) << legacy.status();

  // New surface: the same thread count on an explicit context.
  ExecContext ctx(3);
  auto modern = Adarts::Train(corpus, base, ctx);
  ASSERT_TRUE(modern.ok()) << modern.status();

  ASSERT_EQ(legacy->training_data().size(), modern->training_data().size());
  EXPECT_EQ(legacy->training_data().labels, modern->training_data().labels);
  ASSERT_EQ(legacy->committee_size(), modern->committee_size());
  for (std::size_t i = 0; i < legacy->committee().size(); ++i) {
    EXPECT_EQ(legacy->committee()[i].spec.ToString(),
              modern->committee()[i].spec.ToString());
  }
  for (std::uint64_t seed : {201u, 202u, 203u}) {
    const ts::TimeSeries probe = FaultyProbe(seed);
    auto a = legacy->Recommend(probe);
    auto b = modern->Recommend(probe);
    ASSERT_TRUE(a.ok()) << a.status();
    ASSERT_TRUE(b.ok()) << b.status();
    EXPECT_EQ(*a, *b);
  }
}

TEST(ExecContextEngineTest, DeprecatedRaceShimMatchesExplicitContext) {
  const ml::Dataset train = MakeBlobs(3, 24, 6);
  const ml::Dataset test = MakeBlobs(3, 8, 6, /*seed=*/4);
  automl::ModelRaceOptions options;
  options.num_seed_pipelines = 12;
  options.num_partial_sets = 2;
  options.num_folds = 2;
  options.gamma = 0.0;
  options.seed = 17;

  automl::ModelRaceOptions legacy_options = options;
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  legacy_options.num_threads = 2;
#pragma GCC diagnostic pop
  auto legacy = automl::RunModelRace(train, test, legacy_options);
  ASSERT_TRUE(legacy.ok()) << legacy.status();

  ExecContext ctx(2);
  auto modern = automl::RunModelRace(train, test, options, ctx);
  ASSERT_TRUE(modern.ok()) << modern.status();

  EXPECT_EQ(legacy->pipelines_evaluated, modern->pipelines_evaluated);
  ASSERT_EQ(legacy->elites.size(), modern->elites.size());
  for (std::size_t i = 0; i < legacy->elites.size(); ++i) {
    EXPECT_EQ(legacy->elites[i].spec.ToString(),
              modern->elites[i].spec.ToString());
    EXPECT_EQ(legacy->elites[i].scores, modern->elites[i].scores);
  }
  // The context carried the race counters out as metrics.
  const StageMetrics snap = ctx.metrics().Snapshot();
  EXPECT_EQ(snap.Counter("race.pipelines_evaluated"),
            modern->pipelines_evaluated);
}

TEST(ExecContextEngineTest, BatchPartialReportsDeadlineThroughContext) {
  const auto corpus = TinyCorpus();
  auto engine = Adarts::Train(corpus, TinyTrainOptions());
  ASSERT_TRUE(engine.ok()) << engine.status();

  std::vector<ts::TimeSeries> batch;
  for (std::uint64_t seed : {301u, 302u, 303u, 304u}) {
    batch.push_back(FaultyProbe(seed));
  }

  CancellationToken expired = CancellationToken::WithDeadline(0.0);
  ExecContext ctx(testing::TestThreadCount(), &expired);
  auto partial = engine->RecommendBatchPartial(batch, {}, ctx);
  ASSERT_EQ(partial.size(), batch.size());
  for (const auto& slot : partial) {
    ASSERT_FALSE(slot.ok());
    EXPECT_EQ(slot.status().code(), StatusCode::kDeadlineExceeded);
  }

  // A healthy context on the same engine works and records batch metrics.
  ExecContext healthy_ctx(testing::TestThreadCount());
  auto ok_partial = engine->RecommendBatchPartial(batch, {}, healthy_ctx);
  ASSERT_EQ(ok_partial.size(), batch.size());
  for (const auto& slot : ok_partial) EXPECT_TRUE(slot.ok()) << slot.status();
  EXPECT_EQ(healthy_ctx.metrics().Snapshot().Counter("recommend.requests"),
            batch.size());
}

}  // namespace
}  // namespace adarts
