// Fault-injection and robustness tests: the failpoint registry itself,
// a sweep that arms every registered site in turn against the full engine
// surface (train / recommend / repair / save / load / CSV I/O) asserting
// clean Status propagation or graceful degradation — never a crash — plus
// cooperative cancellation, deadlines, candidate budgets, and the
// inference degradation ladder. See DESIGN.md §7.

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>

#include "adarts/adarts.h"
#include "automl/model_race.h"
#include "common/cancellation.h"
#include "common/exec_context.h"
#include "common/failpoint.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "data/generators.h"
#include "io/csv.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/socket.h"
#include "tests/test_util.h"
#include "ts/missing.h"

namespace adarts {
namespace {

// ---------------------------------------------------------------------------
// Registry unit tests.

TEST(FailpointRegistryTest, UnarmedSitesAreFree) {
  FailpointRegistry::Instance().DisableAll();
  EXPECT_FALSE(FailpointRegistry::Armed());
  EXPECT_TRUE(FailpointRegistry::Instance().Check("la.svd").ok());
  EXPECT_FALSE(ADARTS_FAILPOINT_TRIGGERS("la.svd"));
}

TEST(FailpointRegistryTest, EnableFiresAndDisableStops) {
  auto& reg = FailpointRegistry::Instance();
  reg.Enable("la.svd");
  EXPECT_TRUE(FailpointRegistry::Armed());
  Status s = reg.Check("la.svd");
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_NE(s.message().find("la.svd"), std::string::npos);
  // Other sites are unaffected.
  EXPECT_TRUE(reg.Check("la.pca.fit").ok());
  reg.Disable("la.svd");
  EXPECT_TRUE(reg.Check("la.svd").ok());
  EXPECT_FALSE(FailpointRegistry::Armed());
}

TEST(FailpointRegistryTest, SpecStringParsesCodeAndSkip) {
  auto& reg = FailpointRegistry::Instance();
  ASSERT_TRUE(reg.ArmFromSpec("io.csv.read=notfound@2").ok());
  EXPECT_TRUE(reg.Check("io.csv.read").ok());  // hit 1: skipped
  EXPECT_TRUE(reg.Check("io.csv.read").ok());  // hit 2: skipped
  Status s = reg.Check("io.csv.read");         // hit 3: fires
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(reg.HitCount("io.csv.read"), 3u);
  reg.DisableAll();
  EXPECT_EQ(reg.HitCount("io.csv.read"), 0u);
}

TEST(FailpointRegistryTest, SpecStringListArmsSeveralSites) {
  auto& reg = FailpointRegistry::Instance();
  ASSERT_TRUE(reg.ArmFromSpec("la.svd=numerical;impute.cdrec.fit").ok());
  EXPECT_EQ(reg.ArmedSites().size(), 2u);
  EXPECT_EQ(reg.Check("la.svd").code(), StatusCode::kNumericalError);
  EXPECT_EQ(reg.Check("impute.cdrec.fit").code(), StatusCode::kInternal);
  reg.DisableAll();
}

TEST(FailpointRegistryTest, BadSpecStringsAreRejected) {
  auto& reg = FailpointRegistry::Instance();
  EXPECT_FALSE(reg.ArmFromSpec("la.svd=nosuchcode").ok());
  EXPECT_FALSE(reg.ArmFromSpec("la.svd@notanumber").ok());
  EXPECT_FALSE(reg.ArmFromSpec("=internal").ok());
  reg.DisableAll();
}

TEST(FailpointRegistryTest, ScopedFailpointDisarmsOnDestruction) {
  {
    ScopedFailpoint fp("adarts.save.write");
    EXPECT_FALSE(FailpointRegistry::Instance().Check("adarts.save.write").ok());
  }
  EXPECT_TRUE(FailpointRegistry::Instance().Check("adarts.save.write").ok());
}

TEST(FailpointRegistryTest, MaxFiresLimitsTriggers) {
  FailpointSpec spec;
  spec.max_fires = 1;
  ScopedFailpoint fp("automl.vote.member", spec);
  auto& reg = FailpointRegistry::Instance();
  EXPECT_TRUE(reg.Triggers("automl.vote.member"));
  EXPECT_FALSE(reg.Triggers("automl.vote.member"));
  EXPECT_FALSE(reg.Triggers("automl.vote.member"));
}

TEST(FailpointRegistryTest, CanonicalSiteListIsSortedAndUnique) {
  const auto& sites = AllFailpointSites();
  ASSERT_FALSE(sites.empty());
  std::set<std::string_view> seen;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    EXPECT_TRUE(seen.insert(sites[i]).second) << sites[i] << " duplicated";
    if (i > 0) EXPECT_LT(sites[i - 1], sites[i]);
  }
}

// ---------------------------------------------------------------------------
// Engine fixtures shared by the sweep and the behaviour tests.

TrainOptions FastOptions() {
  TrainOptions opts;
  opts.labeling.algorithms = {
      impute::Algorithm::kCdRec, impute::Algorithm::kSvdImpute,
      impute::Algorithm::kTkcm, impute::Algorithm::kLinearInterp,
      impute::Algorithm::kMeanImpute};
  opts.race.num_seed_pipelines = 12;
  opts.race.num_partial_sets = 2;
  opts.race.num_folds = 2;
  opts.features.landmarks = 16;
  return opts;
}

std::vector<ts::TimeSeries> SmallCorpus() {
  data::GeneratorOptions gopts;
  gopts.num_series = 12;
  gopts.length = 160;
  std::vector<ts::TimeSeries> corpus;
  for (data::Category c :
       {data::Category::kClimate, data::Category::kMotion,
        data::Category::kMedical}) {
    for (auto& s : data::GenerateCategory(c, gopts)) {
      corpus.push_back(std::move(s));
    }
  }
  return corpus;
}

std::vector<ts::TimeSeries> FaultySet(std::size_t count, std::uint64_t seed) {
  data::GeneratorOptions gopts;
  gopts.num_series = count;
  gopts.length = 160;
  gopts.seed = seed;
  auto set = data::GenerateCategory(data::Category::kClimate, gopts);
  Rng rng(seed + 1);
  for (auto& s : set) {
    EXPECT_TRUE(ts::InjectSingleBlock(12, &rng, &s).ok());
  }
  return set;
}

bool InPool(const Adarts& engine, impute::Algorithm algo) {
  for (impute::Algorithm a : engine.algorithm_pool()) {
    if (a == algo) return true;
  }
  return false;
}

/// One tolerant request/response round trip against a live server. With a
/// net.* site armed, any clean failure is an acceptable outcome — a refusal
/// frame, a dropped connection, a shed, a rejected reload — but never a
/// hang (bounded by the receive timeout) and never a crash.
void ServeRoundTrip(std::uint16_t port, const net::Request& request) {
  auto sock = net::ConnectTcp("127.0.0.1", port);
  if (!sock.ok()) return;
  (void)sock->SetReceiveTimeout(2.0);
  if (!net::WriteFrame(*sock, net::EncodeRequest(request)).ok()) return;
  auto frame = net::ReadFrame(*sock);
  if (!frame.ok()) return;
  (void)net::DecodeResponse(*frame);
}

// ---------------------------------------------------------------------------
// The sweep: every registered site is armed in turn and the whole public
// surface is driven through it. Acceptance: each operation returns either
// a non-OK Status or a degraded-but-valid result; nothing crashes, hangs,
// or trips a sanitizer. Each site must also actually fire somewhere.

TEST(FaultInjectionSweepTest, EverySiteFailsCleanlyAcrossTheEngineSurface) {
  const auto corpus = SmallCorpus();
  const auto options = FastOptions();
  auto healthy = Adarts::Train(corpus, options);
  ASSERT_TRUE(healthy.ok()) << healthy.status();
  const auto faulty_set = FaultySet(3, 33);
  const ts::TimeSeries& faulty = faulty_set[0];
  const std::string bundle_path = ::testing::TempDir() + "fi_bundle.txt";
  const std::string csv_path = ::testing::TempDir() + "fi_series.csv";
  // A valid snapshot saved while unarmed: the reload probe below must get
  // past Load so the reload verify/swap sites see traffic.
  const std::string reload_path = ::testing::TempDir() + "fi_reload.adarts";
  ASSERT_TRUE(healthy->Save(reload_path).ok());
  RecommendBatchOptions degraded;
  degraded.fail_fast = false;

  for (std::string_view site : AllFailpointSites()) {
    SCOPED_TRACE(std::string("site: ") + std::string(site));
    ScopedFailpoint fp{std::string(site)};
    auto& reg = FailpointRegistry::Instance();

    // Training: a clean error or a degraded-but-trained engine (imputer
    // faults degrade to infinity-RMSE labels instead of aborting).
    auto trained = Adarts::Train(corpus, options);
    if (trained.ok()) {
      EXPECT_GE(trained->committee_size(), 1u);
    } else {
      EXPECT_FALSE(trained.status().message().empty());
    }

    // Single-series inference.
    auto rec = healthy->Recommend(faulty);
    if (rec.ok()) EXPECT_TRUE(InPool(*healthy, *rec));

    // Batched inference in degraded mode never fails the batch.
    auto batch = healthy->RecommendBatch(faulty_set, degraded);
    ASSERT_TRUE(batch.ok()) << batch.status();
    EXPECT_EQ(batch->size(), faulty_set.size());

    // Repairs: done fully or refused cleanly.
    auto repaired = healthy->Repair(faulty);
    if (repaired.ok()) EXPECT_FALSE(repaired->HasMissing());
    auto repaired_set = healthy->RepairSet(faulty_set, degraded);
    if (repaired_set.ok()) {
      ASSERT_EQ(repaired_set->size(), faulty_set.size());
      for (const auto& s : *repaired_set) EXPECT_FALSE(s.HasMissing());
    }

    // Serialization round trip.
    Status saved = healthy->Save(bundle_path);
    if (saved.ok()) {
      auto loaded = Adarts::Load(bundle_path);
      if (loaded.ok()) EXPECT_EQ(loaded->committee_size(),
                                 healthy->committee_size());
    }

    // Incremental growth through the adarts.update.* sites, on a freshly
    // loaded engine so the shared healthy fixture stays fixed across
    // iterations. A clean failure must leave the engine untouched
    // (version and corpus unchanged); success bumps the version.
    {
      auto loaded = Adarts::Load(reload_path);
      if (loaded.ok() && loaded->has_growth_state()) {
        data::GeneratorOptions gopts;
        gopts.num_series = 2;
        gopts.length = 160;
        gopts.seed = 21;
        auto delta = data::GenerateCategory(data::Category::kClimate, gopts);
        const std::uint64_t version = loaded->engine_version();
        const std::size_t corpus_size = loaded->training_data().size();
        Status appended = loaded->AppendSeries(delta);
        if (appended.ok()) {
          EXPECT_EQ(loaded->engine_version(), version + 1);
          EXPECT_EQ(loaded->training_data().size(),
                    corpus_size + delta.size());
        } else {
          EXPECT_FALSE(appended.message().empty());
          EXPECT_EQ(loaded->engine_version(), version);
          EXPECT_EQ(loaded->training_data().size(), corpus_size);
        }
      }
    }

    // CSV I/O.
    Status wrote = io::WriteSeriesCsv(csv_path, faulty_set);
    if (wrote.ok()) {
      auto read = io::ReadSeriesCsv(csv_path);
      if (read.ok()) EXPECT_EQ(read->size(), faulty_set.size());
    }

    // The serving front end: a ping, a recommend and a snapshot reload
    // drive the net.* sites (accept, mid-frame read/write, queue push,
    // reload verify/swap). Every injected outcome is acceptable — a refused
    // connection, a dropped frame, a rejected reload — but the server must
    // neither crash nor hang, and must still drain cleanly.
    {
      net::ServeOptions sopts;
      sopts.queue_capacity = 4;
      net::Server server(*healthy, sopts);
      ASSERT_TRUE(server.Start().ok());
      net::Request ping;
      ping.type = net::MessageType::kPing;
      ping.id = 1;
      ServeRoundTrip(server.port(), ping);
      net::Request recommend;
      recommend.type = net::MessageType::kRecommend;
      recommend.id = 2;
      recommend.series.push_back(faulty);
      ServeRoundTrip(server.port(), recommend);
      net::Request reload;
      reload.type = net::MessageType::kReload;
      reload.id = 3;
      reload.text = reload_path;
      ServeRoundTrip(server.port(), reload);
      server.RequestShutdown();
      EXPECT_TRUE(server.Wait().ok());
    }

    // Direct fits of the whole imputer family: the engine's pool covers
    // only a subset, and every impute.*.fit site must see traffic.
    for (impute::Algorithm a : impute::AllAlgorithms()) {
      auto out = impute::CreateImputer(a)->ImputeSet(faulty_set);
      if (out.ok()) {
        for (const auto& s : *out) EXPECT_FALSE(s.HasMissing());
      } else {
        EXPECT_FALSE(out.status().message().empty());
      }
    }

    // The battery above reaches every planted site: a registered name that
    // never fires is a stale entry in AllFailpointSites().
    EXPECT_GT(reg.HitCount(std::string(site)), 0u)
        << "registered failpoint never evaluated";
  }
  std::remove(bundle_path.c_str());
  std::remove(csv_path.c_str());
  std::remove(reload_path.c_str());
}

// ---------------------------------------------------------------------------
// Cancellation and deadlines.

TEST(CancellationTest, TokenReportsCancelAndDeadline) {
  CancellationToken token;
  EXPECT_FALSE(token.expired());
  EXPECT_TRUE(token.Check("work").ok());
  token.Cancel();
  EXPECT_TRUE(token.expired());
  EXPECT_EQ(token.Check("work").code(), StatusCode::kCancelled);

  CancellationToken expired = CancellationToken::WithDeadline(0.0);
  EXPECT_TRUE(expired.expired());
  EXPECT_EQ(expired.Check("work").code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(expired.RemainingSeconds(), 0.0);

  CancellationToken generous = CancellationToken::WithDeadline(3600.0);
  EXPECT_FALSE(generous.expired());
  EXPECT_GT(generous.RemainingSeconds(), 0.0);
}

TEST(CancellationTest, ParallelForSkipsWorkOnExpiredToken) {
  CancellationToken token;
  token.Cancel();
  ThreadPool pool(testing::TestThreadCount());
  std::vector<int> touched(64, 0);
  // The loop must still return (skip-but-count keeps the barrier) without
  // running any iteration body.
  ParallelFor(&pool, touched.size(),
              [&](std::size_t i) { touched[i] = 1; }, &token);
  for (int t : touched) EXPECT_EQ(t, 0);
}

TEST(CancellationTest, PreCancelledTrainReturnsCancelled) {
  CancellationToken token;
  token.Cancel();
  ExecContext ctx(0, &token);
  auto engine = Adarts::Train(SmallCorpus(), FastOptions(), ctx);
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kCancelled);
}

TEST(CancellationTest, ExpiredDeadlineTrainReturnsDeadlineExceeded) {
  CancellationToken token = CancellationToken::WithDeadline(0.0);
  ExecContext ctx(0, &token);
  auto engine = Adarts::Train(SmallCorpus(), FastOptions(), ctx);
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(CancellationTest, PreCancelledBatchFillsEverySlotWithCancelled) {
  auto engine = Adarts::Train(SmallCorpus(), FastOptions());
  ASSERT_TRUE(engine.ok()) << engine.status();
  const auto set = FaultySet(4, 55);
  CancellationToken token;
  token.Cancel();
  ExecContext ctx(0, &token);
  auto partial = engine->RecommendBatchPartial(set, {}, ctx);
  ASSERT_EQ(partial.size(), set.size());
  for (const auto& slot : partial) {
    ASSERT_FALSE(slot.ok());
    EXPECT_EQ(slot.status().code(), StatusCode::kCancelled);
  }
}

TEST(ModelRaceBudgetTest, ImpossibleBudgetTimesEveryPipelineOut) {
  ml::Dataset train = testing::MakeBlobs(3, 12, 4, 11);
  ml::Dataset test = testing::MakeBlobs(3, 4, 4, 12);
  automl::ModelRaceOptions options;
  options.num_seed_pipelines = 8;
  options.num_partial_sets = 2;
  options.num_folds = 2;
  options.candidate_budget_seconds = 1e-12;  // nothing can fit this fast
  ExecContext ctx(1);
  auto report = automl::RunModelRace(train, test, options, ctx);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(report.status().message().find("candidate budget"),
            std::string::npos);
}

TEST(ModelRaceBudgetTest, GenerousBudgetMatchesNoBudgetBitForBit) {
  ml::Dataset train = testing::MakeBlobs(3, 12, 4, 21);
  ml::Dataset test = testing::MakeBlobs(3, 4, 4, 22);
  automl::ModelRaceOptions options;
  options.num_seed_pipelines = 8;
  options.num_partial_sets = 2;
  options.num_folds = 2;
  // gamma = 0 removes the wall-clock term from the score (as in
  // threading_test) — with it, no two runs are comparable bit-for-bit.
  options.gamma = 0.0;
  ExecContext baseline_ctx(1);
  auto baseline = automl::RunModelRace(train, test, options, baseline_ctx);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  options.candidate_budget_seconds = 1e9;  // enabled but unreachable
  ExecContext budgeted_ctx(1);
  auto budgeted = automl::RunModelRace(train, test, options, budgeted_ctx);
  ASSERT_TRUE(budgeted.ok()) << budgeted.status();
  EXPECT_EQ(budgeted->pipelines_timed_out, 0u);
  ASSERT_EQ(budgeted->elites.size(), baseline->elites.size());
  for (std::size_t i = 0; i < baseline->elites.size(); ++i) {
    EXPECT_EQ(budgeted->elites[i].spec.ToString(),
              baseline->elites[i].spec.ToString());
    EXPECT_EQ(budgeted->elites[i].mean_score, baseline->elites[i].mean_score);
    EXPECT_EQ(budgeted->elites[i].scores, baseline->elites[i].scores);
  }
  EXPECT_EQ(budgeted->pipelines_evaluated, baseline->pipelines_evaluated);
  EXPECT_EQ(budgeted->pipelines_pruned_early, baseline->pipelines_pruned_early);
  EXPECT_EQ(budgeted->pipelines_pruned_ttest, baseline->pipelines_pruned_ttest);
  EXPECT_EQ(budgeted->eliminations.size(), baseline->eliminations.size());
}

TEST(ModelRaceBudgetTest, EliminationsRecordReasons) {
  ml::Dataset train = testing::MakeBlobs(3, 12, 4, 31);
  ml::Dataset test = testing::MakeBlobs(3, 4, 4, 32);
  automl::ModelRaceOptions options;
  options.num_seed_pipelines = 12;
  options.num_partial_sets = 2;
  options.num_folds = 2;
  ExecContext ctx(1);
  auto report = automl::RunModelRace(train, test, options, ctx);
  ASSERT_TRUE(report.ok()) << report.status();
  // Every counted elimination appears in the reason log and vice versa.
  std::size_t early = 0;
  std::size_t ttest = 0;
  std::size_t timed = 0;
  for (const automl::Elimination& e : report->eliminations) {
    EXPECT_FALSE(e.pipeline.empty());
    switch (e.reason) {
      case automl::EliminationReason::kFailedFit:
      case automl::EliminationReason::kEarlyTermination:
        ++early;
        break;
      case automl::EliminationReason::kTTestPruned:
        ++ttest;
        break;
      case automl::EliminationReason::kTimedOut:
        ++timed;
        break;
    }
  }
  EXPECT_EQ(early, report->pipelines_pruned_early);
  EXPECT_EQ(ttest, report->pipelines_pruned_ttest);
  EXPECT_EQ(timed, report->pipelines_timed_out);
  EXPECT_EQ(timed, 0u);
}

// ---------------------------------------------------------------------------
// The inference degradation ladder.

TEST(DegradationLadderTest, HealthyCommitteeReportsFullCommittee) {
  auto engine = Adarts::Train(SmallCorpus(), FastOptions());
  ASSERT_TRUE(engine.ok()) << engine.status();
  const auto set = FaultySet(1, 77);
  auto rec = engine->RecommendEx(set[0]);
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_EQ(rec->degradation, automl::DegradationLevel::kFullCommittee);
  EXPECT_EQ(rec->vote.members_failed, 0u);
  EXPECT_EQ(rec->vote.members_total, engine->committee_size());
  EXPECT_TRUE(InPool(*engine, rec->algorithm));
}

TEST(DegradationLadderTest, AllMembersFailingFallsBackToDefaultClass) {
  auto engine = Adarts::Train(SmallCorpus(), FastOptions());
  ASSERT_TRUE(engine.ok()) << engine.status();
  const auto set = FaultySet(1, 78);
  ScopedFailpoint fp("automl.vote.member");  // every member, every call
  auto rec = engine->RecommendEx(set[0]);
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_EQ(rec->degradation, automl::DegradationLevel::kDefaultClass);
  EXPECT_EQ(rec->vote.members_failed, engine->committee_size());
  const auto& pool = engine->algorithm_pool();
  ASSERT_LT(static_cast<std::size_t>(engine->default_class()), pool.size());
  EXPECT_EQ(rec->algorithm,
            pool[static_cast<std::size_t>(engine->default_class())]);
}

TEST(DegradationLadderTest, PartialMemberFailureStillVotes) {
  auto engine = Adarts::Train(SmallCorpus(), FastOptions());
  ASSERT_TRUE(engine.ok()) << engine.status();
  if (engine->committee_size() < 2) {
    GTEST_SKIP() << "needs a committee of >= 2 to degrade partially";
  }
  const auto set = FaultySet(1, 79);
  FailpointSpec spec;
  spec.max_fires = 1;  // exactly one member fails
  ScopedFailpoint fp("automl.vote.member", spec);
  auto rec = engine->RecommendEx(set[0]);
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_EQ(rec->vote.members_failed, 1u);
  EXPECT_NE(rec->degradation, automl::DegradationLevel::kDefaultClass);
  EXPECT_NE(rec->degradation, automl::DegradationLevel::kFullCommittee);
  EXPECT_TRUE(InPool(*engine, rec->algorithm));
}

// ---------------------------------------------------------------------------
// Batched inference: aggregate errors and degraded fills.

TEST(RecommendBatchTest, AggregateErrorNamesEveryFailedSeries) {
  auto engine = Adarts::Train(SmallCorpus(), FastOptions());
  ASSERT_TRUE(engine.ok()) << engine.status();
  auto batch = FaultySet(1, 91);
  // Two series far too short to featurize: both must be reported.
  batch.push_back(ts::TimeSeries(la::Vector{1.0, 2.0, 3.0}));
  batch.push_back(ts::TimeSeries(la::Vector{4.0, 5.0}));
  auto result = engine->RecommendBatch(batch);
  ASSERT_FALSE(result.ok());
  const std::string& msg = result.status().message();
  EXPECT_NE(msg.find("2 of 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("series 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("series 2"), std::string::npos) << msg;
}

TEST(RecommendBatchTest, PartialExposesPerSeriesStatuses) {
  auto engine = Adarts::Train(SmallCorpus(), FastOptions());
  ASSERT_TRUE(engine.ok()) << engine.status();
  auto batch = FaultySet(1, 92);
  batch.push_back(ts::TimeSeries(la::Vector{1.0, 2.0, 3.0}));
  auto partial = engine->RecommendBatchPartial(batch);
  ASSERT_EQ(partial.size(), 2u);
  EXPECT_TRUE(partial[0].ok());
  EXPECT_FALSE(partial[1].ok());
}

TEST(RecommendBatchTest, DegradedModeFillsFailuresWithDefaultAlgorithm) {
  auto engine = Adarts::Train(SmallCorpus(), FastOptions());
  ASSERT_TRUE(engine.ok()) << engine.status();
  auto batch = FaultySet(1, 93);
  batch.push_back(ts::TimeSeries(la::Vector{1.0, 2.0, 3.0}));
  RecommendBatchOptions options;
  options.fail_fast = false;
  auto result = engine->RecommendBatch(batch, options);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->size(), 2u);
  const auto& pool = engine->algorithm_pool();
  EXPECT_EQ((*result)[1],
            pool[static_cast<std::size_t>(engine->default_class())]);
}

// ---------------------------------------------------------------------------
// Repair falls back to linear interpolation when the winner's fit fails.

TEST(RepairFallbackTest, FailingWinnerDegradesToLinearInterp) {
  TrainOptions options = FastOptions();
  // An all-iterative pool: whatever wins has an impute.*.fit failpoint, and
  // linear interpolation (no failpoint) stays available as the fallback.
  options.labeling.algorithms = {
      impute::Algorithm::kCdRec, impute::Algorithm::kSvdImpute,
      impute::Algorithm::kSoftImpute, impute::Algorithm::kTeNmf,
      impute::Algorithm::kDynaMmo};
  auto engine = Adarts::Train(SmallCorpus(), options);
  ASSERT_TRUE(engine.ok()) << engine.status();
  const auto set = FaultySet(3, 95);

  ScopedFailpoint f1("impute.cdrec.fit");
  ScopedFailpoint f2("impute.svd.fit");
  ScopedFailpoint f3("impute.soft.fit");
  ScopedFailpoint f4("impute.tenmf.fit");
  ScopedFailpoint f5("impute.dynammo.fit");

  auto repaired = engine->Repair(set[0]);
  ASSERT_TRUE(repaired.ok()) << repaired.status();
  EXPECT_FALSE(repaired->HasMissing());

  auto repaired_set = engine->RepairSet(set);
  ASSERT_TRUE(repaired_set.ok()) << repaired_set.status();
  ASSERT_EQ(repaired_set->size(), set.size());
  for (const auto& s : *repaired_set) EXPECT_FALSE(s.HasMissing());
}

// ---------------------------------------------------------------------------
// Convergence diagnostics from the iterative imputers.

TEST(FitDiagnosticsTest, IterativeImputerReportsConvergence) {
  auto set = testing::MakeCorrelatedSet(6, 120);
  Rng rng(17);
  for (auto& s : set) {
    ASSERT_TRUE(ts::InjectSingleBlock(10, &rng, &s).ok());
  }
  impute::FitDiagnostics diag;
  auto imputer = impute::CreateImputer(impute::Algorithm::kCdRec);
  auto out = imputer->ImputeSetWithDiagnostics(set, &diag);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_GT(diag.iterations, 0);
  if (diag.converged) {
    EXPECT_GE(diag.final_change, 0.0);
  }
  // The diagnostics-free overload matches bit-for-bit.
  auto plain = imputer->ImputeSet(set);
  ASSERT_TRUE(plain.ok());
  for (std::size_t j = 0; j < set.size(); ++j) {
    EXPECT_EQ((*out)[j].values(), (*plain)[j].values());
  }
}

TEST(FitDiagnosticsTest, OneShotImputerReportsDefaults) {
  auto set = testing::MakeCorrelatedSet(4, 80);
  Rng rng(19);
  for (auto& s : set) {
    ASSERT_TRUE(ts::InjectSingleBlock(8, &rng, &s).ok());
  }
  impute::FitDiagnostics diag;
  diag.converged = false;
  diag.iterations = 99;
  auto out = impute::CreateImputer(impute::Algorithm::kMeanImpute)
                 ->ImputeSetWithDiagnostics(set, &diag);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(diag.converged);
  EXPECT_EQ(diag.iterations, 0);
}

}  // namespace
}  // namespace adarts
