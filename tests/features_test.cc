#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "features/coverage.h"
#include "features/feature_extractor.h"
#include "tests/test_util.h"
#include "ts/missing.h"

namespace adarts::features {
namespace {

using ::adarts::testing::MakeSine;

TEST(InterpolateMissingTest, LinearGapFill) {
  ts::TimeSeries s({0.0, 99.0, 99.0, 3.0}, {false, true, true, false});
  const la::Vector filled = InterpolateMissing(s);
  EXPECT_DOUBLE_EQ(filled[1], 1.0);
  EXPECT_DOUBLE_EQ(filled[2], 2.0);
  EXPECT_DOUBLE_EQ(filled[0], 0.0);
  EXPECT_DOUBLE_EQ(filled[3], 3.0);
}

TEST(InterpolateMissingTest, EdgeGapsUseNearestObserved) {
  ts::TimeSeries s({9.0, 5.0, 9.0}, {true, false, true});
  const la::Vector filled = InterpolateMissing(s);
  EXPECT_DOUBLE_EQ(filled[0], 5.0);
  EXPECT_DOUBLE_EQ(filled[2], 5.0);
}

TEST(FeatureExtractorTest, SchemaMatchesOptions) {
  FeatureExtractorOptions both;
  FeatureExtractorOptions stat_only;
  stat_only.topological = false;
  FeatureExtractorOptions topo_only;
  topo_only.statistical = false;

  const FeatureExtractor fe_both(both);
  const FeatureExtractor fe_stat(stat_only);
  const FeatureExtractor fe_topo(topo_only);
  EXPECT_EQ(fe_both.NumFeatures(),
            fe_stat.NumFeatures() + fe_topo.NumFeatures());
  EXPECT_EQ(fe_topo.NumFeatures(), 16u);

  // Names are unique.
  std::set<std::string> names;
  for (const auto& info : fe_both.Schema()) names.insert(info.name);
  EXPECT_EQ(names.size(), fe_both.NumFeatures());
}

TEST(FeatureExtractorTest, VectorLengthMatchesSchema) {
  const FeatureExtractor fe{FeatureExtractorOptions{}};
  auto f = fe.Extract(MakeSine(128, 16.0, 0.05));
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->size(), fe.NumFeatures());
}

TEST(FeatureExtractorTest, DeterministicForSameSeries) {
  const FeatureExtractor fe{FeatureExtractorOptions{}};
  const ts::TimeSeries s = MakeSine(100, 20.0, 0.1);
  auto f1 = fe.Extract(s);
  auto f2 = fe.Extract(s);
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  EXPECT_EQ(*f1, *f2);
}

TEST(FeatureExtractorTest, RejectsTooShortSeries) {
  const FeatureExtractor fe{FeatureExtractorOptions{}};
  EXPECT_FALSE(fe.Extract(ts::TimeSeries({1.0, 2.0, 3.0})).ok());
}

TEST(FeatureExtractorTest, CanonicalFeaturesCorrect) {
  FeatureExtractorOptions opts;
  opts.topological = false;
  const FeatureExtractor fe(opts);
  // Constant-plus-ramp series with known stats.
  la::Vector v(100);
  for (std::size_t i = 0; i < 100; ++i) v[i] = static_cast<double>(i);
  auto f = fe.Extract(ts::TimeSeries(v));
  ASSERT_TRUE(f.ok());
  const auto& schema = fe.Schema();
  const auto at = [&](const std::string& name) {
    for (std::size_t i = 0; i < schema.size(); ++i) {
      if (schema[i].name == name) return (*f)[i];
    }
    ADD_FAILURE() << "missing feature " << name;
    return 0.0;
  };
  EXPECT_NEAR(at("mean"), 49.5, 1e-9);
  EXPECT_NEAR(at("min"), 0.0, 1e-9);
  EXPECT_NEAR(at("max"), 99.0, 1e-9);
  EXPECT_NEAR(at("range"), 99.0, 1e-9);
  EXPECT_NEAR(at("median"), 49.5, 1e-9);
  EXPECT_NEAR(at("skewness"), 0.0, 1e-6);
  EXPECT_NEAR(at("linear_trend_r2"), 1.0, 1e-9);
  EXPECT_GT(at("linear_trend_slope"), 0.0);
}

TEST(FeatureExtractorTest, SeasonalityDetectedOnPeriodicSignal) {
  FeatureExtractorOptions opts;
  opts.topological = false;
  const FeatureExtractor fe(opts);
  auto periodic = fe.Extract(MakeSine(256, 16.0));
  Rng rng(21);
  la::Vector noise_values(256);
  for (double& x : noise_values) x = rng.Normal(0, 1);
  auto noise = fe.Extract(ts::TimeSeries(noise_values));
  ASSERT_TRUE(periodic.ok());
  ASSERT_TRUE(noise.ok());
  const auto& schema = fe.Schema();
  std::size_t season_idx = 0, entropy_idx = 0;
  for (std::size_t i = 0; i < schema.size(); ++i) {
    if (schema[i].name == "seasonality_strength") season_idx = i;
    if (schema[i].name == "spectral_entropy") entropy_idx = i;
  }
  EXPECT_GT((*periodic)[season_idx], 0.8);
  EXPECT_LT((*noise)[season_idx], 0.4);
  EXPECT_LT((*periodic)[entropy_idx], (*noise)[entropy_idx]);
}

TEST(FeatureExtractorTest, WorksOnIncompleteSeries) {
  const FeatureExtractor fe{FeatureExtractorOptions{}};
  ts::TimeSeries s = MakeSine(128, 16.0, 0.05);
  Rng rng(22);
  ASSERT_TRUE(ts::InjectSingleBlock(12, &rng, &s).ok());
  auto f = fe.Extract(s);
  ASSERT_TRUE(f.ok());
  for (double x : *f) {
    EXPECT_TRUE(std::isfinite(x));
  }
}

TEST(FeatureExtractorTest, TopologicalSeparatesPeriodicFromNoise) {
  FeatureExtractorOptions opts;
  opts.statistical = false;
  const FeatureExtractor fe(opts);
  auto periodic = fe.Extract(MakeSine(128, 16.0));
  Rng rng(23);
  la::Vector nv(128);
  for (double& x : nv) x = rng.Normal(0, 1);
  auto noise = fe.Extract(ts::TimeSeries(nv));
  ASSERT_TRUE(periodic.ok());
  ASSERT_TRUE(noise.ok());
  std::size_t h1_max_idx = 0;
  for (std::size_t i = 0; i < fe.Schema().size(); ++i) {
    if (fe.Schema()[i].name == "h1_max_persistence") h1_max_idx = i;
  }
  EXPECT_GT((*periodic)[h1_max_idx], (*noise)[h1_max_idx]);
}

TEST(FeatureExtractorTest, BatchMatchesIndividualExtraction) {
  const FeatureExtractor fe{FeatureExtractorOptions{}};
  std::vector<ts::TimeSeries> set = {MakeSine(64, 8.0, 0.1, 1),
                                     MakeSine(64, 16.0, 0.1, 2)};
  auto batch = fe.ExtractBatch(set);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), 2u);
  EXPECT_EQ((*batch)[0], fe.Extract(set[0]).value());
  EXPECT_EQ((*batch)[1], fe.Extract(set[1]).value());
}

TEST(CoverageTest, SingleDatasetFullCoverageOfItsRange) {
  // One dataset spanning the full normalised range with many samples.
  std::vector<std::vector<la::Vector>> per_dataset(1);
  for (int i = 0; i < 100; ++i) {
    per_dataset[0].push_back({static_cast<double>(i) / 99.0});
  }
  auto report = ComputeFeatureCoverage(per_dataset, 10);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->coverage(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(report->feature_presence[0], 1.0);
}

TEST(CoverageTest, DisjointDatasetsCoverDifferentBuckets) {
  std::vector<std::vector<la::Vector>> per_dataset(2);
  for (int i = 0; i < 50; ++i) {
    per_dataset[0].push_back({static_cast<double>(i) / 100.0});        // low half
    per_dataset[1].push_back({0.5 + static_cast<double>(i) / 100.0});  // high half
  }
  auto report = ComputeFeatureCoverage(per_dataset, 10);
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->coverage(0, 0), 0.5, 0.11);
  EXPECT_NEAR(report->coverage(0, 1), 0.5, 0.11);
}

TEST(CoverageTest, RejectsInconsistentDimensions) {
  std::vector<std::vector<la::Vector>> per_dataset(1);
  per_dataset[0].push_back({1.0, 2.0});
  per_dataset[0].push_back({1.0});
  EXPECT_FALSE(ComputeFeatureCoverage(per_dataset, 10).ok());
}

TEST(CoverageTest, RejectsEmptyInput) {
  EXPECT_FALSE(ComputeFeatureCoverage({}, 10).ok());
}

TEST(MissingnessFeaturesTest, DescribesGapStructure) {
  FeatureExtractorOptions opts;
  opts.statistical = false;
  opts.topological = false;
  opts.missingness = true;
  const FeatureExtractor fe(opts);
  ASSERT_EQ(fe.NumFeatures(), 8u);

  // Two gaps: [10, 20) and [40, 44) in a series of length 100.
  ts::TimeSeries s = MakeSine(100, 20.0);
  for (std::size_t i = 10; i < 20; ++i) s.SetMissing(i, true);
  for (std::size_t i = 40; i < 44; ++i) s.SetMissing(i, true);
  auto f = fe.Extract(s);
  ASSERT_TRUE(f.ok());
  const auto at = [&](const char* name) {
    for (std::size_t i = 0; i < fe.Schema().size(); ++i) {
      if (fe.Schema()[i].name == name) return (*f)[i];
    }
    ADD_FAILURE() << name;
    return -1.0;
  };
  EXPECT_NEAR(at("missing_fraction"), 0.14, 1e-12);
  EXPECT_DOUBLE_EQ(at("gap_count"), 2.0);
  EXPECT_NEAR(at("max_gap_fraction"), 0.10, 1e-12);
  EXPECT_NEAR(at("mean_gap_fraction"), 0.07, 1e-12);
  EXPECT_NEAR(at("first_gap_position"), 0.10, 1e-12);
  EXPECT_NEAR(at("last_gap_end_position"), 0.44, 1e-12);
  EXPECT_DOUBLE_EQ(at("is_tip_gap"), 0.0);
  EXPECT_GT(at("gap_dispersion"), 0.0);
}

TEST(MissingnessFeaturesTest, TipGapFlagged) {
  FeatureExtractorOptions opts;
  opts.statistical = false;
  opts.topological = false;
  opts.missingness = true;
  const FeatureExtractor fe(opts);
  ts::TimeSeries s = MakeSine(100, 20.0);
  ASSERT_TRUE(ts::InjectTipBlock(0.2, &s).ok());
  auto f = fe.Extract(s);
  ASSERT_TRUE(f.ok());
  for (std::size_t i = 0; i < fe.Schema().size(); ++i) {
    if (fe.Schema()[i].name == "is_tip_gap") EXPECT_DOUBLE_EQ((*f)[i], 1.0);
    if (fe.Schema()[i].name == "last_gap_end_position") {
      EXPECT_DOUBLE_EQ((*f)[i], 1.0);
    }
  }
}

TEST(MissingnessFeaturesTest, CompleteSeriesHasNeutralDescriptors) {
  FeatureExtractorOptions opts;
  opts.missingness = true;
  const FeatureExtractor fe(opts);
  auto f = fe.Extract(MakeSine(64, 16.0));
  ASSERT_TRUE(f.ok());
  for (std::size_t i = 0; i < fe.Schema().size(); ++i) {
    if (fe.Schema()[i].group != FeatureGroup::kMissingness) continue;
    if (fe.Schema()[i].name == "first_gap_position") {
      EXPECT_DOUBLE_EQ((*f)[i], 1.0);  // "gap starts after the end"
    } else {
      EXPECT_DOUBLE_EQ((*f)[i], 0.0);
    }
  }
}

}  // namespace
}  // namespace adarts::features
