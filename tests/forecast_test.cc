#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "forecast/forecaster.h"
#include "tests/test_util.h"
#include "ts/metrics.h"

namespace adarts::forecast {
namespace {

using ::adarts::testing::MakeSine;

la::Vector SineHistory(std::size_t n, double period) {
  return MakeSine(n, period).values();
}

struct ForecasterCase {
  const char* name;
  std::function<std::unique_ptr<Forecaster>()> factory;
};

class ForecasterContractTest : public ::testing::TestWithParam<ForecasterCase> {
};

TEST_P(ForecasterContractTest, ProducesFiniteHorizon) {
  auto f = GetParam().factory();
  EXPECT_EQ(f->name(), GetParam().name);
  auto pred = f->Forecast(SineHistory(128, 16.0), 12);
  ASSERT_TRUE(pred.ok()) << GetParam().name;
  ASSERT_EQ(pred->size(), 12u);
  for (double v : *pred) EXPECT_TRUE(std::isfinite(v)) << GetParam().name;
}

TEST_P(ForecasterContractTest, RejectsEmptyHistory) {
  auto f = GetParam().factory();
  EXPECT_FALSE(f->Forecast({}, 4).ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllForecasters, ForecasterContractTest,
    ::testing::Values(
        ForecasterCase{"seasonal_naive", [] { return CreateSeasonalNaive(); }},
        ForecasterCase{"drift", [] { return CreateDrift(); }},
        ForecasterCase{"holt_linear", [] { return CreateHoltLinear(); }},
        ForecasterCase{"holt_winters", [] { return CreateHoltWinters(); }},
        ForecasterCase{"ar_yule_walker",
                       [] { return CreateAutoRegressive(); }}),
    [](const ::testing::TestParamInfo<ForecasterCase>& info) {
      return std::string(info.param.name);
    });

TEST(SeasonalNaiveTest, ExactOnPurePeriodicSignal) {
  // History of 8 full cycles; the next cycle repeats exactly.
  const la::Vector history = SineHistory(128, 16.0);
  auto pred = CreateSeasonalNaive()->Forecast(history, 16);
  ASSERT_TRUE(pred.ok());
  for (std::size_t h = 0; h < 16; ++h) {
    EXPECT_NEAR((*pred)[h], history[112 + h], 1e-9);
  }
}

TEST(DriftTest, ExtendsLinearTrendExactly) {
  la::Vector history(50);
  for (std::size_t i = 0; i < 50; ++i) history[i] = 3.0 * static_cast<double>(i);
  auto pred = CreateDrift()->Forecast(history, 5);
  ASSERT_TRUE(pred.ok());
  for (std::size_t h = 0; h < 5; ++h) {
    EXPECT_NEAR((*pred)[h], 3.0 * static_cast<double>(50 + h), 1e-9);
  }
}

TEST(HoltLinearTest, TracksLinearTrend) {
  la::Vector history(60);
  for (std::size_t i = 0; i < 60; ++i) {
    history[i] = 5.0 + 0.5 * static_cast<double>(i);
  }
  auto pred = CreateHoltLinear()->Forecast(history, 10);
  ASSERT_TRUE(pred.ok());
  for (std::size_t h = 0; h < 10; ++h) {
    EXPECT_NEAR((*pred)[h], 5.0 + 0.5 * static_cast<double>(60 + h), 0.5);
  }
}

TEST(HoltWintersTest, BeatsHoltLinearOnSeasonalData) {
  // Seasonal + trend signal: the seasonal component matters.
  la::Vector history(96);
  for (std::size_t i = 0; i < 96; ++i) {
    history[i] = 0.05 * static_cast<double>(i) +
                 2.0 * std::sin(2.0 * 3.14159265 * static_cast<double>(i) / 12.0);
  }
  la::Vector actual(12);
  for (std::size_t h = 0; h < 12; ++h) {
    const double t = static_cast<double>(96 + h);
    actual[h] = 0.05 * t + 2.0 * std::sin(2.0 * 3.14159265 * t / 12.0);
  }
  auto hw = CreateHoltWinters()->Forecast(history, 12);
  auto hl = CreateHoltLinear()->Forecast(history, 12);
  ASSERT_TRUE(hw.ok());
  ASSERT_TRUE(hl.ok());
  const double hw_err = ts::Smape(actual, *hw).value();
  const double hl_err = ts::Smape(actual, *hl).value();
  EXPECT_LT(hw_err, hl_err);
}

TEST(AutoRegressiveTest, LearnsAr1Dynamics) {
  // x_t = 0.9 x_{t-1} + noise: AR forecast should decay towards the mean,
  // far better than drift on this process.
  Rng rng(44);
  la::Vector history(400);
  history[0] = 5.0;
  for (std::size_t t = 1; t < history.size(); ++t) {
    history[t] = 0.9 * history[t - 1] + rng.Normal(0.0, 0.2);
  }
  auto pred = CreateAutoRegressive(4)->Forecast(history, 8);
  ASSERT_TRUE(pred.ok());
  // Prediction magnitude decays geometrically-ish from the last value.
  const double last = history.back();
  EXPECT_LT(std::fabs((*pred)[7] - la::Mean(history)),
            std::fabs(last - la::Mean(history)) + 0.5);
}

TEST(SmapeHarnessTest, RepairQualityAffectsForecastError) {
  // The downstream mechanism of Fig. 12 in miniature: forecasting from a
  // well-repaired history must beat forecasting from a crudely repaired one.
  const la::Vector clean = SineHistory(144, 16.0);
  la::Vector actual(12);
  for (std::size_t h = 0; h < 12; ++h) {
    actual[h] = std::sin(2.0 * 3.14159265358979 *
                         (static_cast<double>(132 + h) / 16.0));
  }
  const la::Vector history(clean.begin(), clean.begin() + 132);

  // Crude repair: the tip 20% replaced by the series mean.
  la::Vector crude = history;
  for (std::size_t i = 105; i < 132; ++i) crude[i] = 0.0;

  auto good = CreateSeasonalNaive()->Forecast(history, 12);
  auto bad = CreateSeasonalNaive()->Forecast(crude, 12);
  ASSERT_TRUE(good.ok());
  ASSERT_TRUE(bad.ok());
  EXPECT_LT(ts::Smape(actual, *good).value(), ts::Smape(actual, *bad).value());
}

}  // namespace
}  // namespace adarts::forecast
