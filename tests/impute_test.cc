#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "impute/cdrec.h"
#include "impute/imputer.h"
#include "impute/masked_matrix.h"
#include "tests/test_util.h"
#include "ts/metrics.h"
#include "ts/missing.h"

namespace adarts::impute {
namespace {

using ::adarts::testing::MakeCorrelatedSet;
using ::adarts::testing::MakeSine;

/// Masks one block in every series of the set; returns the masked copy.
std::vector<ts::TimeSeries> MaskSet(const std::vector<ts::TimeSeries>& set,
                                    std::size_t block_len,
                                    std::uint64_t seed = 3) {
  Rng rng(seed);
  std::vector<ts::TimeSeries> masked = set;
  for (auto& s : masked) {
    EXPECT_TRUE(ts::InjectSingleBlock(block_len, &rng, &s).ok());
  }
  return masked;
}

double SetRmse(const std::vector<ts::TimeSeries>& masked,
               const std::vector<ts::TimeSeries>& repaired) {
  double total = 0.0;
  for (std::size_t i = 0; i < masked.size(); ++i) {
    total += ts::ImputationRmse(masked[i], repaired[i]).value();
  }
  return total / static_cast<double>(masked.size());
}

TEST(AlgorithmRegistryTest, NamesRoundTrip) {
  for (Algorithm a : AllAlgorithms()) {
    auto parsed = AlgorithmFromString(AlgorithmToString(a));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, a);
  }
  EXPECT_FALSE(AlgorithmFromString("no_such_imputer").ok());
}

TEST(AlgorithmRegistryTest, FactoryCoversAllAlgorithms) {
  EXPECT_EQ(AllAlgorithms().size(), static_cast<std::size_t>(kNumAlgorithms));
  for (Algorithm a : AllAlgorithms()) {
    const auto imputer = CreateImputer(a);
    ASSERT_NE(imputer, nullptr);
    EXPECT_EQ(imputer->name(), AlgorithmToString(a));
  }
}

TEST(MaskedMatrixTest, BuildAndRestore) {
  std::vector<ts::TimeSeries> set = MakeCorrelatedSet(3, 50);
  set[0].SetMissing(10, true);
  auto m = BuildMaskedMatrix(set);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->rows(), 50u);
  EXPECT_EQ(m->cols(), 3u);
  EXPECT_TRUE(m->IsMissing(10, 0));
  // The pre-fill interpolates, never leaves the raw masked value.
  la::Matrix work = m->values;
  work(0, 0) = -999.0;
  RestoreObserved(*m, &work);
  EXPECT_DOUBLE_EQ(work(0, 0), set[0].value(0));
}

TEST(MaskedMatrixTest, RejectsBadSets) {
  EXPECT_FALSE(BuildMaskedMatrix({}).ok());
  std::vector<ts::TimeSeries> unequal = {ts::TimeSeries({1.0, 2.0}),
                                         ts::TimeSeries({1.0, 2.0, 3.0})};
  EXPECT_FALSE(BuildMaskedMatrix(unequal).ok());
  ts::TimeSeries all_missing({1.0, 2.0}, {true, true});
  EXPECT_FALSE(BuildMaskedMatrix({all_missing}).ok());
}

TEST(CentroidDecompositionTest, ReconstructsFullRank) {
  // Full-rank CD reproduces the matrix exactly.
  la::Matrix x = la::Matrix::FromRows({{1, 2}, {3, 4}, {5, 7}});
  auto cd = ComputeCentroidDecomposition(x, 2);
  ASSERT_TRUE(cd.ok());
  const la::Matrix recon = cd->loadings.Multiply(cd->relevance.Transpose());
  EXPECT_LT(recon.Subtract(x).FrobeniusNorm(), 1e-9);
}

TEST(CentroidDecompositionTest, TruncationCapturesDominantStructure) {
  // A rank-1 matrix is exactly captured by one centroid component.
  la::Matrix x(6, 4);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      x(i, j) = static_cast<double>(i + 1) * static_cast<double>(j + 1);
    }
  }
  auto cd = ComputeCentroidDecomposition(x, 1);
  ASSERT_TRUE(cd.ok());
  const la::Matrix recon = cd->loadings.Multiply(cd->relevance.Transpose());
  EXPECT_LT(recon.Subtract(x).FrobeniusNorm(), 1e-9 * x.FrobeniusNorm());
}

// ---- Parameterized contract tests over every algorithm.

class ImputerContractTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(ImputerContractTest, RepairsEveryMissingPosition) {
  const auto imputer = CreateImputer(GetParam());
  const std::vector<ts::TimeSeries> set = MakeCorrelatedSet(4, 96);
  const std::vector<ts::TimeSeries> masked = MaskSet(set, 10);
  auto repaired = imputer->ImputeSet(masked);
  ASSERT_TRUE(repaired.ok()) << imputer->name() << ": " << repaired.status();
  ASSERT_EQ(repaired->size(), masked.size());
  for (std::size_t i = 0; i < repaired->size(); ++i) {
    EXPECT_FALSE((*repaired)[i].HasMissing()) << imputer->name();
    for (std::size_t t = 0; t < (*repaired)[i].length(); ++t) {
      EXPECT_TRUE(std::isfinite((*repaired)[i].value(t))) << imputer->name();
    }
  }
}

TEST_P(ImputerContractTest, PreservesObservedValues) {
  const auto imputer = CreateImputer(GetParam());
  const std::vector<ts::TimeSeries> set = MakeCorrelatedSet(3, 80);
  const std::vector<ts::TimeSeries> masked = MaskSet(set, 8);
  auto repaired = imputer->ImputeSet(masked);
  ASSERT_TRUE(repaired.ok()) << imputer->name();
  for (std::size_t i = 0; i < masked.size(); ++i) {
    for (std::size_t t = 0; t < masked[i].length(); ++t) {
      if (!masked[i].IsMissing(t)) {
        EXPECT_DOUBLE_EQ((*repaired)[i].value(t), masked[i].value(t))
            << imputer->name() << " series " << i << " t " << t;
      }
    }
  }
}

TEST_P(ImputerContractTest, SingleSeriesConvenienceWrapper) {
  const auto imputer = CreateImputer(GetParam());
  ts::TimeSeries s = MakeSine(96, 24.0, 0.02);
  Rng rng(5);
  ASSERT_TRUE(ts::InjectSingleBlock(8, &rng, &s).ok());
  auto repaired = imputer->Impute(s);
  ASSERT_TRUE(repaired.ok()) << imputer->name();
  EXPECT_FALSE(repaired->HasMissing());
}

TEST_P(ImputerContractTest, RejectsInvalidInput) {
  const auto imputer = CreateImputer(GetParam());
  EXPECT_FALSE(imputer->ImputeSet({}).ok()) << imputer->name();
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, ImputerContractTest, ::testing::ValuesIn(AllAlgorithms()),
    [](const ::testing::TestParamInfo<Algorithm>& info) {
      return std::string(AlgorithmToString(info.param));
    });

// ---- Accuracy expectations on friendly data.

TEST(ImputerAccuracyTest, MatrixMethodsBeatMeanOnCorrelatedData) {
  const std::vector<ts::TimeSeries> set = MakeCorrelatedSet(6, 128, 0.02);
  const std::vector<ts::TimeSeries> masked = MaskSet(set, 16);

  const double mean_rmse = SetRmse(
      masked, CreateImputer(Algorithm::kMeanImpute)->ImputeSet(masked).value());
  for (Algorithm a : {Algorithm::kCdRec, Algorithm::kSvdImpute,
                      Algorithm::kSoftImpute, Algorithm::kDynaMmo,
                      Algorithm::kTrmf, Algorithm::kStMvl, Algorithm::kIim}) {
    const double rmse =
        SetRmse(masked, CreateImputer(a)->ImputeSet(masked).value());
    EXPECT_LT(rmse, mean_rmse) << AlgorithmToString(a);
  }
}

TEST(ImputerAccuracyTest, TkcmHandlesRepeatingPatterns) {
  // A clean periodic series: pattern matching should recover the block to
  // much better accuracy than the mean.
  std::vector<ts::TimeSeries> set = {MakeSine(192, 24.0, 0.0)};
  std::vector<ts::TimeSeries> masked = set;
  ASSERT_TRUE(ts::InjectBlockAt(100, 12, &masked[0]).ok());
  const double tkcm_rmse = SetRmse(
      masked, CreateImputer(Algorithm::kTkcm)->ImputeSet(masked).value());
  const double mean_rmse = SetRmse(
      masked, CreateImputer(Algorithm::kMeanImpute)->ImputeSet(masked).value());
  EXPECT_LT(tkcm_rmse, 0.5 * mean_rmse);
}

TEST(ImputerAccuracyTest, LinearInterpExactOnLinearSeries) {
  la::Vector v(50);
  for (std::size_t i = 0; i < 50; ++i) v[i] = 2.0 * static_cast<double>(i);
  std::vector<ts::TimeSeries> masked = {ts::TimeSeries(v)};
  ASSERT_TRUE(ts::InjectBlockAt(20, 5, &masked[0]).ok());
  auto repaired =
      CreateImputer(Algorithm::kLinearInterp)->ImputeSet(masked);
  ASSERT_TRUE(repaired.ok());
  EXPECT_NEAR(SetRmse(masked, *repaired), 0.0, 1e-9);
}

TEST(ImputerAccuracyTest, RoslToleratesAnomalies) {
  // Correlated set with spikes: the robust method should still reconstruct
  // the smooth structure under the mask.
  std::vector<ts::TimeSeries> set = MakeCorrelatedSet(5, 128, 0.02);
  Rng rng(9);
  for (auto& s : set) {
    for (std::size_t t = 0; t < s.length(); ++t) {
      if (rng.Bernoulli(0.02)) s.set_value(t, s.value(t) + 8.0);
    }
  }
  const std::vector<ts::TimeSeries> masked = MaskSet(set, 12);
  // The fair comparison is against the non-robust member of the same
  // rank-k family: the sparse component should absorb the spikes.
  const double rosl_rmse = SetRmse(
      masked, CreateImputer(Algorithm::kRosl)->ImputeSet(masked).value());
  const double svd_rmse = SetRmse(
      masked, CreateImputer(Algorithm::kSvdImpute)->ImputeSet(masked).value());
  EXPECT_LT(rosl_rmse, svd_rmse);
}

TEST(ImputerAccuracyTest, GrouseFallsBackGracefullyOnSingleSeries) {
  ts::TimeSeries s = MakeSine(64, 16.0);
  Rng rng(10);
  ASSERT_TRUE(ts::InjectSingleBlock(6, &rng, &s).ok());
  auto repaired = CreateImputer(Algorithm::kGrouse)->Impute(s);
  ASSERT_TRUE(repaired.ok());
  EXPECT_FALSE(repaired->HasMissing());
}

}  // namespace
}  // namespace adarts::impute
