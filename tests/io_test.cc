#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "io/csv.h"
#include "tests/test_util.h"

namespace adarts::io {
namespace {

using ::adarts::testing::MakeSine;

TEST(CsvFormatTest, RoundTripCompleteSeries) {
  std::vector<ts::TimeSeries> set = {MakeSine(20, 5.0, 0.0, 1),
                                     MakeSine(20, 7.0, 0.0, 2)};
  set[0].set_name("alpha");
  set[1].set_name("beta");
  auto csv = FormatSeriesCsv(set);
  ASSERT_TRUE(csv.ok());
  auto parsed = ParseSeriesCsv(*csv);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].name(), "alpha");
  EXPECT_EQ((*parsed)[1].name(), "beta");
  for (std::size_t j = 0; j < 2; ++j) {
    ASSERT_EQ((*parsed)[j].length(), 20u);
    for (std::size_t t = 0; t < 20; ++t) {
      EXPECT_DOUBLE_EQ((*parsed)[j].value(t), set[j].value(t));
      EXPECT_FALSE((*parsed)[j].IsMissing(t));
    }
  }
}

TEST(CsvFormatTest, RoundTripPreservesMask) {
  ts::TimeSeries s({1.0, 2.0, 3.0, 4.0}, {false, true, false, true});
  s.set_name("gappy");
  auto csv = FormatSeriesCsv({s});
  ASSERT_TRUE(csv.ok());
  auto parsed = ParseSeriesCsv(*csv);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE((*parsed)[0].IsMissing(0));
  EXPECT_TRUE((*parsed)[0].IsMissing(1));
  EXPECT_FALSE((*parsed)[0].IsMissing(2));
  EXPECT_TRUE((*parsed)[0].IsMissing(3));
  EXPECT_DOUBLE_EQ((*parsed)[0].value(0), 1.0);
  EXPECT_DOUBLE_EQ((*parsed)[0].value(2), 3.0);
}

TEST(CsvParseTest, AcceptsNanSpellings) {
  auto parsed = ParseSeriesCsv("a,b\n1.0,nan\nNaN,2.0\nnull,NA\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE((*parsed)[0].IsMissing(0));
  EXPECT_TRUE((*parsed)[1].IsMissing(0));
  EXPECT_TRUE((*parsed)[0].IsMissing(1));
  EXPECT_TRUE((*parsed)[0].IsMissing(2));
  EXPECT_TRUE((*parsed)[1].IsMissing(2));
}

TEST(CsvParseTest, BlankLineSemantics) {
  // Single column: a blank line is one missing cell.
  auto single = ParseSeriesCsv("a\n1\n\n2\n");
  ASSERT_TRUE(single.ok());
  ASSERT_EQ((*single)[0].length(), 3u);
  EXPECT_TRUE((*single)[0].IsMissing(1));
  // Multiple columns: a blank line is ignorable padding.
  auto multi = ParseSeriesCsv("a,b\n1,2\n\n3,4\n");
  ASSERT_TRUE(multi.ok());
  EXPECT_EQ((*multi)[0].length(), 2u);
}

TEST(CsvParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseSeriesCsv("").ok());
  EXPECT_FALSE(ParseSeriesCsv("a,b\n1.0\n").ok());       // ragged row
  EXPECT_FALSE(ParseSeriesCsv("a\nnot_a_number\n").ok());
  EXPECT_FALSE(ParseSeriesCsv("a,b\n").ok());            // header only
}

TEST(CsvParseTest, RejectsNonFiniteObservedValues) {
  // from_chars accepts infinity spellings, but a non-finite *observed*
  // value must not enter the engine (DESIGN.md §7). The "nan" spellings of
  // AcceptsNanSpellings stay valid — they mean "missing", not "observed".
  auto inf = ParseSeriesCsv("a\n1.0\ninf\n");
  ASSERT_FALSE(inf.ok());
  EXPECT_NE(inf.status().message().find("non-finite"), std::string::npos);
  EXPECT_NE(inf.status().message().find("row 3"), std::string::npos);
  EXPECT_FALSE(ParseSeriesCsv("a,b\n-inf,2.0\n").ok());
  EXPECT_FALSE(ParseSeriesCsv("a\nnan(0)\n").ok());
  EXPECT_FALSE(ParseSeriesCsv("a\nINFINITY\n").ok());
}

TEST(CsvParseTest, NegativeAndScientificNumbers) {
  auto parsed = ParseSeriesCsv("x\n-1.5\n2e3\n-4.25e-2\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ((*parsed)[0].value(0), -1.5);
  EXPECT_DOUBLE_EQ((*parsed)[0].value(1), 2000.0);
  EXPECT_DOUBLE_EQ((*parsed)[0].value(2), -0.0425);
}

TEST(CsvFormatTest, RejectsInvalidSets) {
  EXPECT_FALSE(FormatSeriesCsv({}).ok());
  std::vector<ts::TimeSeries> ragged = {ts::TimeSeries({1.0, 2.0}),
                                        ts::TimeSeries({1.0})};
  EXPECT_FALSE(FormatSeriesCsv(ragged).ok());
}

TEST(CsvFileTest, WriteAndReadBack) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "adarts_io_test.csv").string();
  std::vector<ts::TimeSeries> set = {MakeSine(16, 4.0, 0.0, 3)};
  set[0].SetMissing(5, true);
  ASSERT_TRUE(WriteSeriesCsv(path, set).ok());
  auto parsed = ReadSeriesCsv(path);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ((*parsed)[0].length(), 16u);
  EXPECT_TRUE((*parsed)[0].IsMissing(5));
  std::remove(path.c_str());
}

TEST(CsvFileTest, MissingFileFails) {
  EXPECT_FALSE(ReadSeriesCsv("/nonexistent/definitely/not/here.csv").ok());
}

}  // namespace
}  // namespace adarts::io
