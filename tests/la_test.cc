#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "la/decompositions.h"
#include "la/matrix.h"
#include "la/pca.h"
#include "la/vector_ops.h"

namespace adarts::la {
namespace {

Matrix RandomMatrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.Normal(0.0, 1.0);
  }
  return m;
}

TEST(VectorOpsTest, DotAndNorms) {
  Vector a = {1.0, 2.0, 3.0};
  Vector b = {4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(Dot(a, b), 4.0 - 10.0 + 18.0);
  EXPECT_DOUBLE_EQ(Norm2(a), std::sqrt(14.0));
  EXPECT_DOUBLE_EQ(Norm1(b), 15.0);
}

TEST(VectorOpsTest, AxpyAndScale) {
  Vector x = {1.0, 2.0};
  Vector y = {10.0, 20.0};
  Axpy(2.0, x, &y);
  EXPECT_EQ(y, (Vector{12.0, 24.0}));
  Scale(0.5, &y);
  EXPECT_EQ(y, (Vector{6.0, 12.0}));
}

TEST(VectorOpsTest, MeanVarianceStdDev) {
  Vector v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(v), 5.0);
  EXPECT_DOUBLE_EQ(Variance(v), 4.0);
  EXPECT_DOUBLE_EQ(StdDev(v), 2.0);
}

TEST(VectorOpsTest, PearsonCorrelation) {
  Vector a = {1, 2, 3, 4, 5};
  Vector b = {2, 4, 6, 8, 10};
  Vector c = {5, 4, 3, 2, 1};
  EXPECT_NEAR(PearsonCorrelation(a, b), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation(a, c), -1.0, 1e-12);
  Vector constant = {3, 3, 3, 3, 3};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(a, constant), 0.0);
}

TEST(MatrixTest, ConstructionAndIndexing) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(MatrixTest, IdentityAndDiagonal) {
  const Matrix i3 = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(i3(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(i3(0, 1), 0.0);
  const Matrix d = Matrix::Diagonal({2.0, 3.0});
  EXPECT_DOUBLE_EQ(d(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
}

TEST(MatrixTest, TransposeRoundTrip) {
  const Matrix m = RandomMatrix(4, 7, 2);
  EXPECT_EQ(m.Transpose().Transpose(), m);
}

TEST(MatrixTest, MultiplyMatchesManualComputation) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  const Matrix c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, MultiplyVec) {
  Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  const Vector v = a.MultiplyVec({1.0, 0.0, -1.0});
  EXPECT_EQ(v, (Vector{-2.0, -2.0}));
}

TEST(MatrixTest, BlockExtraction) {
  const Matrix m = RandomMatrix(5, 5, 3);
  const Matrix b = m.Block(1, 2, 2, 3);
  EXPECT_EQ(b.rows(), 2u);
  EXPECT_EQ(b.cols(), 3u);
  EXPECT_DOUBLE_EQ(b(0, 0), m(1, 2));
  EXPECT_DOUBLE_EQ(b(1, 2), m(2, 4));
}

TEST(MatrixTest, FrobeniusNorm) {
  Matrix m = Matrix::FromRows({{3, 0}, {0, 4}});
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
}

// --- SVD property sweep over shapes.

class SvdShapeTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(SvdShapeTest, ReconstructsAndIsOrthogonal) {
  const auto [rows, cols] = GetParam();
  const Matrix a = RandomMatrix(rows, cols, 17 + rows * 31 + cols);
  auto svd = ComputeSvd(a);
  ASSERT_TRUE(svd.ok()) << svd.status();
  const std::size_t k = std::min(rows, cols);
  ASSERT_EQ(svd->singular_values.size(), k);

  // Singular values nonnegative and descending.
  for (std::size_t i = 0; i + 1 < k; ++i) {
    EXPECT_GE(svd->singular_values[i], svd->singular_values[i + 1]);
  }
  EXPECT_GE(svd->singular_values[k - 1], 0.0);

  // Reconstruction A = U S V^T.
  Matrix recon(rows, cols);
  for (std::size_t r = 0; r < k; ++r) {
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = 0; j < cols; ++j) {
        recon(i, j) += svd->u(i, r) * svd->singular_values[r] * svd->v(j, r);
      }
    }
  }
  EXPECT_LT(recon.Subtract(a).FrobeniusNorm(), 1e-8 * (1.0 + a.FrobeniusNorm()));

  // Columns of U and V are orthonormal (for nonzero singular values).
  for (std::size_t p = 0; p < k; ++p) {
    if (svd->singular_values[p] < 1e-9) continue;
    for (std::size_t q = p; q < k; ++q) {
      if (svd->singular_values[q] < 1e-9) continue;
      const double uu = Dot(svd->u.Col(p), svd->u.Col(q));
      const double vv = Dot(svd->v.Col(p), svd->v.Col(q));
      const double expect = p == q ? 1.0 : 0.0;
      EXPECT_NEAR(uu, expect, 1e-8);
      EXPECT_NEAR(vv, expect, 1e-8);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SvdShapeTest,
                         ::testing::Values(std::make_pair(4, 4),
                                           std::make_pair(8, 3),
                                           std::make_pair(3, 8),
                                           std::make_pair(12, 12),
                                           std::make_pair(20, 5),
                                           std::make_pair(5, 20)));

TEST(SvdTest, KnownSingularValues) {
  // diag(3, 2) has singular values {3, 2}.
  const Matrix a = Matrix::Diagonal({2.0, 3.0});
  auto svd = ComputeSvd(a);
  ASSERT_TRUE(svd.ok());
  EXPECT_NEAR(svd->singular_values[0], 3.0, 1e-10);
  EXPECT_NEAR(svd->singular_values[1], 2.0, 1e-10);
}

TEST(SvdTest, RankDeficientMatrix) {
  // Rank-1 outer product has exactly one nonzero singular value.
  Matrix a(4, 4);
  const Vector u = {1, 2, 3, 4};
  const Vector v = {1, -1, 1, -1};
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) a(i, j) = u[i] * v[j];
  }
  auto svd = ComputeSvd(a);
  ASSERT_TRUE(svd.ok());
  EXPECT_GT(svd->singular_values[0], 1.0);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_NEAR(svd->singular_values[i], 0.0, 1e-8);
  }
}

TEST(EigenTest, SymmetricEigenDecomposition) {
  Matrix a = Matrix::FromRows({{2, 1}, {1, 2}});
  auto eig = ComputeSymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->eigenvalues[0], 3.0, 1e-10);
  EXPECT_NEAR(eig->eigenvalues[1], 1.0, 1e-10);
  // A q = lambda q for each pair.
  for (std::size_t k = 0; k < 2; ++k) {
    const Vector q = eig->eigenvectors.Col(k);
    const Vector aq = a.MultiplyVec(q);
    for (std::size_t i = 0; i < 2; ++i) {
      EXPECT_NEAR(aq[i], eig->eigenvalues[k] * q[i], 1e-9);
    }
  }
}

TEST(EigenTest, RandomSymmetricReconstruction) {
  Matrix base = RandomMatrix(6, 6, 23);
  const Matrix a = base.Add(base.Transpose()).Scale(0.5);
  auto eig = ComputeSymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  // A = Q diag(w) Q^T.
  const Matrix q = eig->eigenvectors;
  const Matrix recon =
      q.Multiply(Matrix::Diagonal(eig->eigenvalues)).Multiply(q.Transpose());
  EXPECT_LT(recon.Subtract(a).FrobeniusNorm(), 1e-8 * (1.0 + a.FrobeniusNorm()));
}

TEST(QrTest, DecomposesAndQIsOrthonormal) {
  const Matrix a = RandomMatrix(8, 4, 29);
  auto qr = ComputeQr(a);
  ASSERT_TRUE(qr.ok());
  const Matrix recon = qr->q.Multiply(qr->r);
  EXPECT_LT(recon.Subtract(a).FrobeniusNorm(), 1e-9 * (1.0 + a.FrobeniusNorm()));
  // R upper triangular.
  for (std::size_t i = 1; i < 4; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      EXPECT_NEAR(qr->r(i, j), 0.0, 1e-9);
    }
  }
  // Q^T Q = I.
  const Matrix qtq = qr->q.Transpose().Multiply(qr->q);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(qtq(i, j), i == j ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(SolveTest, LinearSystem) {
  Matrix a = Matrix::FromRows({{2, 1}, {1, 3}});
  auto x = SolveLinear(a, {5.0, 10.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.0, 1e-10);
  EXPECT_NEAR((*x)[1], 3.0, 1e-10);
}

TEST(SolveTest, SingularMatrixFails) {
  Matrix a = Matrix::FromRows({{1, 2}, {2, 4}});
  EXPECT_FALSE(SolveLinear(a, {1.0, 2.0}).ok());
}

TEST(SolveTest, CholeskyOnSpdSystem) {
  Matrix a = Matrix::FromRows({{4, 1}, {1, 3}});
  auto x = SolveCholesky(a, {1.0, 2.0});
  ASSERT_TRUE(x.ok());
  // Verify A x = b.
  const Vector ax = a.MultiplyVec(*x);
  EXPECT_NEAR(ax[0], 1.0, 1e-10);
  EXPECT_NEAR(ax[1], 2.0, 1e-10);
}

TEST(SolveTest, CholeskyRejectsIndefinite) {
  Matrix a = Matrix::FromRows({{0, 1}, {1, 0}});
  EXPECT_FALSE(SolveCholesky(a, {1.0, 1.0}).ok());
}

TEST(SolveTest, LeastSquaresRecoversCoefficients) {
  // y = 2 x0 - x1 with overdetermined noise-free samples.
  Rng rng(31);
  Matrix a(20, 2);
  Vector b(20);
  for (std::size_t i = 0; i < 20; ++i) {
    a(i, 0) = rng.Normal(0, 1);
    a(i, 1) = rng.Normal(0, 1);
    b[i] = 2.0 * a(i, 0) - a(i, 1);
  }
  auto x = SolveLeastSquares(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 2.0, 1e-6);
  EXPECT_NEAR((*x)[1], -1.0, 1e-6);
}

TEST(SolveTest, InverseTimesMatrixIsIdentity) {
  const Matrix a = RandomMatrix(5, 5, 37);
  auto inv = Inverse(a);
  ASSERT_TRUE(inv.ok());
  const Matrix prod = a.Multiply(*inv);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(PcaTest, RecoversDominantDirection) {
  // Data stretched along (1, 1)/sqrt(2): the top axis should align with it.
  Rng rng(41);
  Matrix data(200, 2);
  for (std::size_t i = 0; i < 200; ++i) {
    const double main = rng.Normal(0.0, 3.0);
    const double cross = rng.Normal(0.0, 0.3);
    data(i, 0) = main + cross;
    data(i, 1) = main - cross;
  }
  Pca pca;
  ASSERT_TRUE(pca.Fit(data, 2).ok());
  const double c0 = std::fabs(pca.components()(0, 0));
  const double c1 = std::fabs(pca.components()(1, 0));
  EXPECT_NEAR(c0, 1.0 / std::sqrt(2.0), 0.05);
  EXPECT_NEAR(c1, 1.0 / std::sqrt(2.0), 0.05);
  EXPECT_GT(pca.explained_variance_ratio()[0], 0.95);
}

TEST(PcaTest, TransformCentersData) {
  Matrix data = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  Pca pca;
  ASSERT_TRUE(pca.Fit(data, 1).ok());
  auto projected = pca.Transform(data);
  ASSERT_TRUE(projected.ok());
  double sum = 0.0;
  for (std::size_t i = 0; i < 3; ++i) sum += (*projected)(i, 0);
  EXPECT_NEAR(sum, 0.0, 1e-9);
}

TEST(PcaTest, TransformBeforeFitFails) {
  Pca pca;
  EXPECT_FALSE(pca.Transform(Matrix(2, 2)).ok());
}

}  // namespace
}  // namespace adarts::la
