#include <gtest/gtest.h>

#include "cluster/incremental.h"
#include "labeling/labeler.h"
#include "tests/test_util.h"

namespace adarts::labeling {
namespace {

using ::adarts::testing::MakeCorrelatedSet;
using ::adarts::testing::MakeSine;

LabelingOptions SmallPool() {
  LabelingOptions opts;
  opts.algorithms = {impute::Algorithm::kCdRec, impute::Algorithm::kTkcm,
                     impute::Algorithm::kMeanImpute,
                     impute::Algorithm::kLinearInterp};
  return opts;
}

TEST(FullLabelingTest, LabelsEverySeriesWithinPool) {
  const auto series = MakeCorrelatedSet(6, 96);
  auto result = LabelSeriesFull(series, SmallPool());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->labels.size(), series.size());
  for (int label : result->labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 4);
  }
  EXPECT_EQ(result->algorithms.size(), 4u);
  EXPECT_EQ(result->rmse.rows(), series.size());
  EXPECT_EQ(result->rmse.cols(), 4u);
}

TEST(FullLabelingTest, LabelIsArgminOfRmseRow) {
  const auto series = MakeCorrelatedSet(5, 96);
  auto result = LabelSeriesFull(series, SmallPool());
  ASSERT_TRUE(result.ok());
  for (std::size_t i = 0; i < series.size(); ++i) {
    const int label = result->labels[i];
    for (std::size_t a = 0; a < result->algorithms.size(); ++a) {
      EXPECT_LE(result->rmse(i, static_cast<std::size_t>(label)),
                result->rmse(i, a));
    }
  }
}

TEST(FullLabelingTest, MeanRarelyWinsOnSmoothCorrelatedData) {
  const auto series = MakeCorrelatedSet(8, 128, 0.02);
  auto result = LabelSeriesFull(series, SmallPool());
  ASSERT_TRUE(result.ok());
  std::size_t mean_wins = 0;
  for (int label : result->labels) {
    if (result->algorithms[static_cast<std::size_t>(label)] ==
        impute::Algorithm::kMeanImpute) {
      ++mean_wins;
    }
  }
  EXPECT_LT(mean_wins, series.size() / 2);
}

TEST(FullLabelingTest, DeterministicForSameSeed) {
  const auto series = MakeCorrelatedSet(5, 96);
  auto a = LabelSeriesFull(series, SmallPool());
  auto b = LabelSeriesFull(series, SmallPool());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->labels, b->labels);
}

TEST(ClusterLabelingTest, PropagatesWithinClusters) {
  const auto series = MakeCorrelatedSet(9, 96);
  cluster::Clustering clustering;
  clustering.clusters = {{0, 1, 2, 3}, {4, 5, 6, 7, 8}};
  auto result = LabelByClusters(series, clustering, SmallPool());
  ASSERT_TRUE(result.ok());
  // All members of one cluster share one label.
  for (const auto& members : clustering.clusters) {
    for (std::size_t i : members) {
      EXPECT_EQ(result->labels[i], result->labels[members[0]]);
    }
  }
}

TEST(ClusterLabelingTest, UsesFewerImputationRunsThanFull) {
  const auto series = MakeCorrelatedSet(12, 96);
  auto clustering = cluster::IncrementalClustering(series, {});
  ASSERT_TRUE(clustering.ok());
  auto fast = LabelByClusters(series, *clustering, SmallPool());
  auto full = LabelSeriesFull(series, SmallPool());
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(full.ok());
  // Cluster labeling runs the pool once per cluster; full labeling runs it
  // once per set with every series masked, so the saving shows up when the
  // corpus splits into few clusters relative to the naive per-series cost
  // |series| * |pool| the paper motivates against.
  EXPECT_LE(fast->imputation_runs,
            clustering->NumClusters() * fast->algorithms.size());
  EXPECT_LE(fast->imputation_runs, series.size() * fast->algorithms.size());
}

TEST(ClusterRepresentativesTest, PicksHighestTotalCorrelation) {
  const auto series = MakeCorrelatedSet(4, 64);
  const la::Matrix corr = cluster::PairwiseCorrelationMatrix(series);
  const std::vector<std::size_t> members = {0, 1, 2, 3};
  const auto reps = ClusterRepresentatives(members, corr, 2);
  EXPECT_EQ(reps.size(), 2u);
  for (std::size_t r : reps) {
    EXPECT_LT(r, 4u);
  }
  // Requesting more reps than members returns all members.
  EXPECT_EQ(ClusterRepresentatives(members, corr, 10).size(), 4u);
}

TEST(LabelingTest, EmptyInputRejected) {
  EXPECT_FALSE(LabelSeriesFull({}, SmallPool()).ok());
  cluster::Clustering empty;
  EXPECT_FALSE(LabelByClusters({}, empty, SmallPool()).ok());
}

TEST(LabelingTest, DefaultPoolIsFullRegistry) {
  const auto series = MakeCorrelatedSet(4, 96);
  LabelingOptions opts;  // no explicit pool
  auto result = LabelSeriesFull(series, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->algorithms.size(),
            static_cast<std::size_t>(impute::kNumAlgorithms));
}

}  // namespace
}  // namespace adarts::labeling
