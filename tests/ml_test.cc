#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/classifier.h"
#include "ml/dataset.h"
#include "ml/metrics.h"
#include "ml/scaler.h"
#include "tests/test_util.h"

namespace adarts::ml {
namespace {

using ::adarts::testing::MakeBlobs;

TEST(DatasetTest, ValidateCatchesMistakes) {
  Dataset d = MakeBlobs(3, 10, 4);
  EXPECT_TRUE(d.Validate().ok());
  d.labels[0] = 7;
  EXPECT_FALSE(d.Validate().ok());
  d.labels[0] = 0;
  d.features[0].push_back(1.0);
  EXPECT_FALSE(d.Validate().ok());
}

TEST(DatasetTest, SubsetSelectsRows) {
  const Dataset d = MakeBlobs(2, 5, 3);
  const Dataset sub = d.Subset({0, 9});
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.features[0], d.features[0]);
  EXPECT_EQ(sub.labels[1], d.labels[9]);
}

TEST(DatasetTest, ClassCounts) {
  const Dataset d = MakeBlobs(3, 7, 2);
  const auto counts = d.ClassCounts();
  EXPECT_EQ(counts, (std::vector<std::size_t>{7, 7, 7}));
}

TEST(SplitTest, StratifiedSplitKeepsClassBalance) {
  const Dataset d = MakeBlobs(4, 40, 3);
  Rng rng(2);
  auto split = StratifiedSplit(d, 0.75, &rng);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->train.size() + split->test.size(), d.size());
  const auto train_counts = split->train.ClassCounts();
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_EQ(train_counts[c], 30u);  // 75% of 40 per class
  }
}

TEST(SplitTest, RejectsBadFraction) {
  const Dataset d = MakeBlobs(2, 10, 2);
  Rng rng(3);
  EXPECT_FALSE(StratifiedSplit(d, 0.0, &rng).ok());
  EXPECT_FALSE(StratifiedSplit(d, 1.0, &rng).ok());
}

TEST(KFoldTest, FoldsPartitionAndStratify) {
  const Dataset d = MakeBlobs(3, 30, 2);
  Rng rng(4);
  auto folds = StratifiedKFoldIndices(d, 3, &rng);
  ASSERT_TRUE(folds.ok());
  ASSERT_EQ(folds->size(), 3u);
  std::set<std::size_t> seen;
  for (const auto& fold : *folds) {
    const Dataset part = d.Subset(fold);
    const auto counts = part.ClassCounts();
    for (std::size_t c = 0; c < 3; ++c) EXPECT_EQ(counts[c], 10u);
    for (std::size_t i : fold) {
      EXPECT_TRUE(seen.insert(i).second) << "index appears in two folds";
    }
  }
  EXPECT_EQ(seen.size(), d.size());
}

TEST(GrowingPartialSetsTest, CumulativeAndComplete) {
  const Dataset d = MakeBlobs(2, 20, 2);
  Rng rng(5);
  auto sets = GrowingPartialSets(d, 4, &rng);
  ASSERT_TRUE(sets.ok());
  ASSERT_EQ(sets->size(), 4u);
  for (std::size_t i = 1; i < sets->size(); ++i) {
    EXPECT_GT((*sets)[i].size(), (*sets)[i - 1].size());
  }
  EXPECT_EQ(sets->back().size(), d.size());
}

TEST(MetricsTest, PerfectPredictionsScoreOne) {
  const std::vector<int> y = {0, 1, 2, 0, 1, 2};
  auto report = ComputeClassificationReport(y, y, 3);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->accuracy, 1.0);
  EXPECT_DOUBLE_EQ(report->precision, 1.0);
  EXPECT_DOUBLE_EQ(report->recall, 1.0);
  EXPECT_DOUBLE_EQ(report->f1, 1.0);
}

TEST(MetricsTest, KnownConfusionMatrix) {
  // Class 0: 2 samples, 1 correct. Class 1: 2 samples, 2 correct.
  const std::vector<int> y_true = {0, 0, 1, 1};
  const std::vector<int> y_pred = {0, 1, 1, 1};
  auto report = ComputeClassificationReport(y_true, y_pred, 2);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->accuracy, 0.75);
  // class0: p=1, r=0.5, f1=2/3; class1: p=2/3, r=1, f1=0.8; weighted 0.5 each.
  EXPECT_NEAR(report->precision, 0.5 * 1.0 + 0.5 * (2.0 / 3.0), 1e-12);
  EXPECT_NEAR(report->recall, 0.75, 1e-12);
  EXPECT_NEAR(report->f1, 0.5 * (2.0 / 3.0) + 0.5 * 0.8, 1e-12);
}

TEST(MetricsTest, RecallAtKAndMrr) {
  // True class 2 is ranked second in the first sample, first in the second.
  const std::vector<int> y_true = {2, 1};
  const std::vector<la::Vector> probas = {{0.5, 0.1, 0.4},
                                          {0.2, 0.7, 0.1}};
  EXPECT_DOUBLE_EQ(RecallAtK(y_true, probas, 1).value(), 0.5);
  EXPECT_DOUBLE_EQ(RecallAtK(y_true, probas, 2).value(), 1.0);
  EXPECT_DOUBLE_EQ(MeanReciprocalRank(y_true, probas).value(),
                   (0.5 + 1.0) / 2.0);
}

TEST(WelchTest, IdenticalSamplesHaveHighPValue) {
  const la::Vector a = {1.0, 1.1, 0.9, 1.05, 0.95};
  EXPECT_GT(WelchTTestPValue(a, a), 0.95);
}

TEST(WelchTest, SeparatedSamplesHaveLowPValue) {
  const la::Vector a = {1.0, 1.1, 0.9, 1.05, 0.95, 1.02};
  const la::Vector b = {5.0, 5.1, 4.9, 5.05, 4.95, 5.02};
  EXPECT_LT(WelchTTestPValue(a, b), 1e-6);
}

TEST(WelchTest, DegenerateSamplesReturnOne) {
  EXPECT_DOUBLE_EQ(WelchTTestPValue({1.0}, {2.0, 3.0}), 1.0);
}

TEST(WelchTest, KnownValuesMatchExternalReference) {
  // References computed independently (scipy.stats.ttest_ind convention,
  // equal_var=False). The classic equal-variance pair has t = -1, df = 8.
  const la::Vector a1 = {1.0, 2.0, 3.0, 4.0, 5.0};
  const la::Vector b1 = {2.0, 3.0, 4.0, 5.0, 6.0};
  EXPECT_NEAR(WelchTTestPValue(a1, b1), 0.34659350708733405, 1e-9);

  // Unequal variances: Welch-Satterthwaite df = 7.4162, t = -1.5267.
  const la::Vector a2 = {1.0, 2.0, 3.0, 4.0, 5.0};
  const la::Vector b2 = {2.5, 3.5, 4.5, 5.5, 8.0};
  EXPECT_NEAR(WelchTTestPValue(a2, b2), 0.16827962790087192, 1e-9);

  // Clearly separated: p in the 1e-5 range, not a hard zero.
  const la::Vector a3 = {0.1, 0.2, 0.15, 0.12, 0.18, 0.16};
  const la::Vector b3 = {0.3, 0.28, 0.35, 0.33, 0.31, 0.29};
  EXPECT_NEAR(WelchTTestPValue(a3, b3), 1.3210689715896157e-05, 1e-10);
}

TEST(WelchTest, SymmetricUnderArgumentSwap) {
  const la::Vector a = {1.0, 2.0, 3.0, 4.0, 5.0};
  const la::Vector b = {2.5, 3.5, 4.5, 5.5, 8.0};
  // t flips sign under the swap but only t^2 enters the CDF, so the
  // two-sided p-value is exactly symmetric.
  EXPECT_DOUBLE_EQ(WelchTTestPValue(a, b), WelchTTestPValue(b, a));
}

TEST(WelchTest, OverlappingSamplesMidPValue) {
  Rng rng(6);
  la::Vector a(30), b(30);
  for (std::size_t i = 0; i < 30; ++i) {
    a[i] = rng.Normal(0.0, 1.0);
    b[i] = rng.Normal(0.15, 1.0);  // small shift: should not be significant
  }
  EXPECT_GT(WelchTTestPValue(a, b), 0.05);
}

// ---- Scalers.

class ScalerContractTest : public ::testing::TestWithParam<ScalerKind> {};

TEST_P(ScalerContractTest, FitTransformShapesAndFiniteness) {
  const Dataset d = MakeBlobs(3, 20, 5);
  auto scaler = CreateScaler(GetParam());
  ASSERT_NE(scaler, nullptr);
  ASSERT_TRUE(scaler->Fit(d.features).ok());
  const la::Vector out = scaler->Transform(d.features[0]);
  EXPECT_FALSE(out.empty());
  for (double v : out) EXPECT_TRUE(std::isfinite(v));
  EXPECT_FALSE(scaler->Fit({}).ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllScalers, ScalerContractTest, ::testing::ValuesIn(AllScalerKinds()),
    [](const ::testing::TestParamInfo<ScalerKind>& info) {
      return std::string(ScalerKindToString(info.param));
    });

TEST(ScalerTest, StandardScalerNormalizesMoments) {
  const Dataset d = MakeBlobs(2, 50, 3);
  auto scaler = CreateScaler(ScalerKind::kStandard);
  ASSERT_TRUE(scaler->Fit(d.features).ok());
  const auto scaled = scaler->TransformBatch(d.features);
  for (std::size_t j = 0; j < 3; ++j) {
    la::Vector col;
    for (const auto& f : scaled) col.push_back(f[j]);
    EXPECT_NEAR(la::Mean(col), 0.0, 1e-9);
    EXPECT_NEAR(la::StdDev(col), 1.0, 1e-9);
  }
}

TEST(ScalerTest, MinMaxScalerBoundsTrainingData) {
  const Dataset d = MakeBlobs(2, 50, 3);
  auto scaler = CreateScaler(ScalerKind::kMinMax);
  ASSERT_TRUE(scaler->Fit(d.features).ok());
  for (const auto& f : scaler->TransformBatch(d.features)) {
    for (double v : f) {
      EXPECT_GE(v, -1e-12);
      EXPECT_LE(v, 1.0 + 1e-12);
    }
  }
}

TEST(ScalerTest, L2NormScalerUnitNorm) {
  auto scaler = CreateScaler(ScalerKind::kL2Norm);
  ASSERT_TRUE(scaler->Fit({{3.0, 4.0}}).ok());
  const la::Vector out = scaler->Transform({3.0, 4.0});
  EXPECT_NEAR(la::Norm2(out), 1.0, 1e-12);
}

TEST(ScalerTest, PcaScalerReducesDimension) {
  const Dataset d = MakeBlobs(2, 40, 10);
  auto scaler = CreateScaler(ScalerKind::kPca, 0.3);
  ASSERT_TRUE(scaler->Fit(d.features).ok());
  EXPECT_EQ(scaler->Transform(d.features[0]).size(), 3u);
}

TEST(ScalerTest, RobustScalerIgnoresOutliers) {
  std::vector<la::Vector> x;
  for (int i = 0; i < 99; ++i) x.push_back({static_cast<double>(i % 10)});
  x.push_back({1e9});  // one wild outlier
  auto robust = CreateScaler(ScalerKind::kRobust);
  ASSERT_TRUE(robust->Fit(x).ok());
  // Median ~4.5, IQR ~5: typical values map to O(1), unaffected by 1e9.
  EXPECT_LT(std::fabs(robust->Transform({5.0})[0]), 2.0);
}

// ---- Classifiers.

class ClassifierContractTest : public ::testing::TestWithParam<ClassifierKind> {
};

TEST_P(ClassifierContractTest, LearnsSeparableBlobs) {
  const Dataset train = MakeBlobs(3, 30, 4, 11);
  const Dataset test = MakeBlobs(3, 10, 4, 12);
  auto clf = CreateClassifier(GetParam());
  ASSERT_NE(clf, nullptr);
  ASSERT_TRUE(clf->Fit(train).ok()) << ClassifierKindToString(GetParam());
  int correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    if (clf->Predict(test.features[i]) == test.labels[i]) ++correct;
  }
  EXPECT_GE(correct, 24)  // 80% on a trivially separable problem
      << ClassifierKindToString(GetParam());
}

TEST_P(ClassifierContractTest, ProbabilitiesAreDistribution) {
  const Dataset train = MakeBlobs(4, 15, 3, 13);
  auto clf = CreateClassifier(GetParam());
  ASSERT_TRUE(clf->Fit(train).ok());
  const la::Vector p = clf->PredictProba(train.features[0]);
  ASSERT_EQ(p.size(), 4u);
  double sum = 0.0;
  for (double v : p) {
    EXPECT_GE(v, -1e-12);
    EXPECT_LE(v, 1.0 + 1e-12);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_P(ClassifierContractTest, DeterministicGivenSeed) {
  const Dataset train = MakeBlobs(3, 20, 3, 14);
  HyperParams params;
  params["seed"] = 77;
  auto a = CreateClassifier(GetParam(), params);
  auto b = CreateClassifier(GetParam(), params);
  ASSERT_TRUE(a->Fit(train).ok());
  ASSERT_TRUE(b->Fit(train).ok());
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(a->PredictProba(train.features[i]),
              b->PredictProba(train.features[i]))
        << ClassifierKindToString(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllClassifiers, ClassifierContractTest,
    ::testing::ValuesIn(AllClassifierKinds()),
    [](const ::testing::TestParamInfo<ClassifierKind>& info) {
      return std::string(ClassifierKindToString(info.param));
    });

TEST(ClassifierKindTest, NamesRoundTrip) {
  for (ClassifierKind k : AllClassifierKinds()) {
    auto parsed = ClassifierKindFromString(ClassifierKindToString(k));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_FALSE(ClassifierKindFromString("nope").ok());
}

TEST(ParamSpecTest, EveryFamilyHasSpecsAndDefaultsInRange) {
  for (ClassifierKind k : AllClassifierKinds()) {
    const auto& specs = ParamSpecsFor(k);
    EXPECT_FALSE(specs.empty()) << ClassifierKindToString(k);
    for (const auto& spec : specs) {
      EXPECT_LE(spec.min_value, spec.default_value) << spec.name;
      EXPECT_GE(spec.max_value, spec.default_value) << spec.name;
    }
  }
}

TEST(ParamSpecTest, ResolveClampsAndFillsDefaults) {
  HyperParams p;
  p["k"] = 9999.0;  // above max
  const HyperParams resolved = ResolveParams(ClassifierKind::kKnn, p);
  EXPECT_DOUBLE_EQ(resolved.at("k"), 25.0);
  EXPECT_TRUE(resolved.contains("weight_by_distance"));
  EXPECT_TRUE(resolved.contains("seed"));
}

TEST(KnnTest, SingleNeighborMemorizesTraining) {
  const Dataset train = MakeBlobs(2, 10, 2, 15);
  HyperParams p;
  p["k"] = 1;
  auto clf = CreateClassifier(ClassifierKind::kKnn, p);
  ASSERT_TRUE(clf->Fit(train).ok());
  for (std::size_t i = 0; i < train.size(); ++i) {
    EXPECT_EQ(clf->Predict(train.features[i]), train.labels[i]);
  }
}

TEST(DecisionTreeTest, DepthOneCannotFitXor) {
  // XOR needs depth 2; a depth-1 stump stays near chance, depth-4 nails it.
  Dataset data;
  data.num_classes = 2;
  Rng rng(16);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.Uniform(-1, 1);
    const double y = rng.Uniform(-1, 1);
    data.features.push_back({x, y});
    data.labels.push_back((x > 0) != (y > 0) ? 1 : 0);
  }
  HyperParams shallow;
  shallow["max_depth"] = 1;
  auto stump = CreateClassifier(ClassifierKind::kDecisionTree, shallow);
  HyperParams deep;
  deep["max_depth"] = 4;
  auto tree = CreateClassifier(ClassifierKind::kDecisionTree, deep);
  ASSERT_TRUE(stump->Fit(data).ok());
  ASSERT_TRUE(tree->Fit(data).ok());
  int stump_correct = 0, tree_correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    stump_correct += stump->Predict(data.features[i]) == data.labels[i];
    tree_correct += tree->Predict(data.features[i]) == data.labels[i];
  }
  EXPECT_GT(tree_correct, stump_correct + 20);
  EXPECT_GT(tree_correct, 180);
}

}  // namespace
}  // namespace adarts::ml
