// Unit tests of the serving substrate (DESIGN.md §10): the bounded
// admission queue, the process shutdown latch, the length-prefixed wire
// codec (including hostile-frame rejection), and the EINTR-safe socket
// primitives.

#include <poll.h>

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/bounded_queue.h"
#include "common/shutdown.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "ts/time_series.h"

namespace adarts {
namespace {

// --- BoundedQueue --------------------------------------------------------

TEST(NetTest, BoundedQueuePopsInFifoOrder) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_TRUE(queue.TryPush(3));
  int out = 0;
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 3);
  EXPECT_EQ(queue.size(), 0u);
}

TEST(NetTest, BoundedQueueShedsAtCapacity) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));  // full: caller sheds
  int out = 0;
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_TRUE(queue.TryPush(3));  // space again
}

TEST(NetTest, BoundedQueueZeroCapacityShedsEverything) {
  BoundedQueue<int> queue(0);
  EXPECT_FALSE(queue.TryPush(1));
}

TEST(NetTest, BoundedQueueCloseDrainsThenStops) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  queue.Close();
  EXPECT_FALSE(queue.TryPush(3));  // closed: no new admissions
  // Items admitted before Close stay poppable — the no-lost-in-flight rule.
  int out = 0;
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(queue.Pop(&out));  // closed and drained
}

TEST(NetTest, BoundedQueueCloseWakesBlockedConsumer) {
  BoundedQueue<int> queue(4);
  std::thread consumer([&queue] {
    int out = 0;
    EXPECT_FALSE(queue.Pop(&out));  // wakes on Close with nothing queued
  });
  queue.Close();
  consumer.join();
}

// --- shutdown latch ------------------------------------------------------

TEST(NetTest, ShutdownLatchTripsAndWakesThePipe) {
  ASSERT_TRUE(InstallShutdownHandler().ok());
  ResetShutdownLatchForTest();
  EXPECT_FALSE(ShutdownRequested());
  ASSERT_GE(ShutdownWakeFd(), 0);

  RequestShutdown();
  EXPECT_TRUE(ShutdownRequested());
  pollfd pfd;
  pfd.fd = ShutdownWakeFd();
  pfd.events = POLLIN;
  pfd.revents = 0;
  EXPECT_EQ(::poll(&pfd, 1, 1000), 1);  // readable: a poller wakes
  EXPECT_NE(pfd.revents & POLLIN, 0);

  ResetShutdownLatchForTest();
  EXPECT_FALSE(ShutdownRequested());
}

// --- protocol codec ------------------------------------------------------

ts::TimeSeries MakeSeries(std::size_t length, const std::string& name) {
  la::Vector values(length);
  std::vector<bool> missing(length, false);
  for (std::size_t i = 0; i < length; ++i) {
    values[i] = 0.25 * static_cast<double>(i) - 1.0;
  }
  missing[length / 2] = true;
  values[length / 2] = 123.0;  // placeholder under the mask; must not leak
  ts::TimeSeries series(std::move(values), std::move(missing));
  series.set_name(name);
  return series;
}

TEST(NetTest, RequestRoundTripsEveryType) {
  for (net::MessageType type :
       {net::MessageType::kPing, net::MessageType::kRecommend,
        net::MessageType::kRecommendBatch, net::MessageType::kRepair}) {
    net::Request request;
    request.type = type;
    request.id = 0xDEADBEEFCAFEF00DULL;
    request.deadline_ms = 12.5;
    if (type == net::MessageType::kRecommendBatch) {
      request.series.push_back(MakeSeries(8, "a"));
      request.series.push_back(MakeSeries(5, "b"));
    } else if (type != net::MessageType::kPing) {
      request.series.push_back(MakeSeries(8, "one"));
    }

    auto decoded = net::DecodeRequest(net::EncodeRequest(request));
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->type, request.type);
    EXPECT_EQ(decoded->id, request.id);
    EXPECT_EQ(decoded->deadline_ms, request.deadline_ms);
    ASSERT_EQ(decoded->series.size(), request.series.size());
    for (std::size_t s = 0; s < request.series.size(); ++s) {
      const ts::TimeSeries& in = request.series[s];
      const ts::TimeSeries& out = decoded->series[s];
      EXPECT_EQ(out.name(), in.name());
      ASSERT_EQ(out.length(), in.length());
      for (std::size_t i = 0; i < in.length(); ++i) {
        EXPECT_EQ(out.IsMissing(i), in.IsMissing(i));
        if (!in.IsMissing(i)) EXPECT_EQ(out.value(i), in.value(i));
      }
    }
  }
}

TEST(NetTest, MissingPositionsTravelAsNaNNotPlaceholder) {
  net::Request request;
  request.type = net::MessageType::kRepair;
  request.series.push_back(MakeSeries(8, "s"));
  auto decoded = net::DecodeRequest(net::EncodeRequest(request));
  ASSERT_TRUE(decoded.ok());
  // The 123.0 stored under the mask must not survive the wire: a masked
  // position decodes as missing with a neutral 0.0 payload.
  EXPECT_TRUE(decoded->series[0].IsMissing(4));
  EXPECT_EQ(decoded->series[0].value(4), 0.0);
}

TEST(NetTest, ResponseRoundTrips) {
  net::Response response;
  response.type = net::MessageType::kRecommendBatch;
  response.id = 42;
  response.code = StatusCode::kOk;
  response.algorithms = {"cdrec", "linear_interp"};
  response.series.push_back(MakeSeries(6, "repaired"));

  auto decoded = net::DecodeResponse(net::EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->type, response.type);
  EXPECT_EQ(decoded->id, response.id);
  EXPECT_TRUE(decoded->ok());
  EXPECT_EQ(decoded->algorithms, response.algorithms);
  ASSERT_EQ(decoded->series.size(), 1u);
  EXPECT_EQ(decoded->series[0].name(), "repaired");
}

TEST(NetTest, ErrorResponseCarriesCodeAndMessage) {
  net::Response response;
  response.type = net::MessageType::kRecommend;
  response.id = 7;
  response.code = StatusCode::kUnavailable;
  response.message = "admission queue full, request shed";
  auto decoded = net::DecodeResponse(net::EncodeResponse(response));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->code, StatusCode::kUnavailable);
  EXPECT_EQ(decoded->message, response.message);
  EXPECT_FALSE(decoded->ok());
}

TEST(NetTest, DecodeRejectsUnknownType) {
  net::Request request;
  request.type = net::MessageType::kPing;
  std::string body = net::EncodeRequest(request);
  body[0] = static_cast<char>(99);
  EXPECT_FALSE(net::DecodeRequest(body).ok());
}

TEST(NetTest, DecodeRejectsTrailingBytes) {
  net::Request request;
  request.type = net::MessageType::kPing;
  std::string body = net::EncodeRequest(request) + "x";
  EXPECT_FALSE(net::DecodeRequest(body).ok());
}

TEST(NetTest, DecodeRejectsWrongSeriesCountForType) {
  // A recommend request must carry exactly one series; hand-build one with
  // zero (ping layout with a recommend tag).
  net::Request ping;
  ping.type = net::MessageType::kPing;
  std::string body = net::EncodeRequest(ping);
  body[0] = static_cast<char>(net::MessageType::kRecommend);
  EXPECT_FALSE(net::DecodeRequest(body).ok());
}

TEST(NetTest, DecodeRejectsHostileSeriesLengthBeforeAllocating) {
  net::Request request;
  request.type = net::MessageType::kRecommend;
  request.series.push_back(MakeSeries(4, ""));
  std::string body = net::EncodeRequest(request);
  // Series length lives after type(1) + id(8) + deadline(8) + count(4) +
  // name_len(4) + empty name. Patch it to 2^63: decode must reject against
  // the bytes actually remaining, not reserve terabytes.
  const std::size_t offset = 1 + 8 + 8 + 4 + 4;
  for (int i = 0; i < 8; ++i) body[offset + i] = '\0';
  body[offset + 7] = static_cast<char>(0x80);
  auto decoded = net::DecodeRequest(body);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(NetTest, DecodeRejectsOutOfRangeResponseCode) {
  net::Response response;
  response.type = net::MessageType::kPing;
  std::string body = net::EncodeResponse(response);
  body[1 + 8] = static_cast<char>(200);  // after type + id
  EXPECT_FALSE(net::DecodeResponse(body).ok());
}

TEST(NetTest, RequestTruncationSweepNeverCrashes) {
  net::Request request;
  request.type = net::MessageType::kRecommendBatch;
  request.id = 3;
  request.series.push_back(MakeSeries(7, "abc"));
  request.series.push_back(MakeSeries(3, ""));
  const std::string body = net::EncodeRequest(request);
  ASSERT_TRUE(net::DecodeRequest(body).ok());
  // Every strict prefix is a corrupt frame: decode must return an error —
  // never crash, never over-read (ASan watches), never allocate from a
  // size the truncated bytes cannot back.
  for (std::size_t n = 0; n < body.size(); ++n) {
    EXPECT_FALSE(net::DecodeRequest(body.substr(0, n)).ok())
        << "prefix of " << n << " bytes decoded";
  }
}

// --- sockets -------------------------------------------------------------

struct Loopback {
  net::Socket server;
  net::Socket client;
};

Loopback MakePair() {
  std::uint16_t port = 0;
  auto listener = net::ListenTcp(0, 4, &port);
  EXPECT_TRUE(listener.ok()) << listener.status();
  auto client = net::ConnectTcp("127.0.0.1", port);
  EXPECT_TRUE(client.ok()) << client.status();
  auto server = net::AcceptConnection(*listener, -1);
  EXPECT_TRUE(server.ok()) << server.status();
  return {std::move(server).value(), std::move(client).value()};
}

TEST(NetTest, SocketRoundTripsBytes) {
  Loopback pair = MakePair();
  const char out[] = "hello";
  ASSERT_TRUE(pair.client.WriteAll(out, sizeof(out)).ok());
  char in[sizeof(out)] = {};
  ASSERT_TRUE(pair.server.ReadExact(in, sizeof(in)).ok());
  EXPECT_STREQ(in, "hello");
}

TEST(NetTest, CleanEofIsUnavailable) {
  Loopback pair = MakePair();
  pair.client.Close();
  char buf[4];
  Status status = pair.server.ReadExact(buf, sizeof(buf));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
}

TEST(NetTest, MidMessageEofIsInternal) {
  Loopback pair = MakePair();
  ASSERT_TRUE(pair.client.WriteAll("ab", 2).ok());
  pair.client.Close();
  char buf[4];
  Status status = pair.server.ReadExact(buf, sizeof(buf));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

TEST(NetTest, AcceptWakesOnWakeFdWithCancelled) {
  std::uint16_t port = 0;
  auto listener = net::ListenTcp(0, 4, &port);
  ASSERT_TRUE(listener.ok());
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  std::thread waker([&fds] {
    const char byte = 1;
    ASSERT_EQ(::write(fds[1], &byte, 1), 1);
  });
  auto accepted = net::AcceptConnection(*listener, fds[0]);
  waker.join();
  ASSERT_FALSE(accepted.ok());
  EXPECT_EQ(accepted.status().code(), StatusCode::kCancelled);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(NetTest, FrameRoundTripsAndRejectsOversizePrefix) {
  Loopback pair = MakePair();
  ASSERT_TRUE(net::WriteFrame(pair.client, "payload").ok());
  auto body = net::ReadFrame(pair.server);
  ASSERT_TRUE(body.ok()) << body.status();
  EXPECT_EQ(*body, "payload");

  // A hostile 0xFFFFFFFF length prefix must be rejected from the prefix
  // alone — before any body allocation or read.
  const unsigned char huge[4] = {0xff, 0xff, 0xff, 0xff};
  ASSERT_TRUE(pair.client.WriteAll(huge, sizeof(huge)).ok());
  auto rejected = net::ReadFrame(pair.server, /*max_body_bytes=*/1 << 16);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace adarts
