// Determinism tests of the parallel clustering path: the pair-index-slotted
// PairwiseCorrelationMatrix, IncrementalClustering's pooled candidate
// evaluation, and LabelByClusters on top of both must produce bit-identical
// results for every thread count, plus the degenerate-corpus edge cases.

#include <cstddef>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/clustering.h"
#include "cluster/incremental.h"
#include "common/exec_context.h"
#include "common/thread_pool.h"
#include "data/generators.h"
#include "labeling/labeler.h"
#include "tests/test_util.h"

namespace adarts::cluster {
namespace {

using ::adarts::testing::MakeSine;
using ::adarts::testing::TestThreadCount;

std::vector<ts::TimeSeries> MixedCorpus(std::size_t per_category = 4,
                                        std::size_t length = 128) {
  data::GeneratorOptions gopts;
  gopts.num_series = per_category;
  gopts.length = length;
  return data::GenerateMixedCorpus(1, gopts);
}

ts::TimeSeries ConstantSeries(std::size_t length, double value) {
  return ts::TimeSeries(la::Vector(length, value));
}

// ---- Pair-index decoding.

TEST(ParallelClusterPairIndexTest, EnumeratesUpperTriangleInOrder) {
  for (std::size_t n : {2u, 3u, 4u, 7u, 12u, 33u}) {
    std::size_t k = 0;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j, ++k) {
        const auto [row, col] = PairFromIndex(k, n);
        EXPECT_EQ(row, i) << "k=" << k << " n=" << n;
        EXPECT_EQ(col, j) << "k=" << k << " n=" << n;
      }
    }
    EXPECT_EQ(k, n * (n - 1) / 2);
  }
}

// ---- Bit-identity across thread counts.

TEST(ParallelClusterDeterminismTest, CorrelationMatrixBitIdentical) {
  const auto corpus = MixedCorpus();
  const la::Matrix serial = PairwiseCorrelationMatrix(corpus);
  ThreadPool pool(TestThreadCount());
  const la::Matrix parallel = PairwiseCorrelationMatrix(corpus, &pool);
  ASSERT_EQ(parallel.rows(), serial.rows());
  ASSERT_EQ(parallel.cols(), serial.cols());
  for (std::size_t i = 0; i < serial.rows(); ++i) {
    for (std::size_t j = 0; j < serial.cols(); ++j) {
      EXPECT_EQ(parallel(i, j), serial(i, j)) << "(" << i << "," << j << ")";
    }
  }
}

TEST(ParallelClusterDeterminismTest, ClusterAssignmentsBitIdentical) {
  const auto corpus = MixedCorpus();
  IncrementalOptions opts;
  opts.correlation_threshold = 0.75;
  ExecContext serial_ctx(1);
  ExecContext parallel_ctx(TestThreadCount());

  auto a = IncrementalClustering(corpus, opts, serial_ctx);
  auto b = IncrementalClustering(corpus, opts, parallel_ctx);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(a->clusters, b->clusters);
  EXPECT_EQ(a->Assignments(corpus.size()), b->Assignments(corpus.size()));
}

TEST(ParallelClusterDeterminismTest, ClusterLabelsBitIdentical) {
  const auto corpus = MixedCorpus(3, 96);
  ExecContext serial_ctx(1);
  ExecContext parallel_ctx(TestThreadCount());
  auto clustering = IncrementalClustering(corpus, {}, serial_ctx);
  ASSERT_TRUE(clustering.ok()) << clustering.status();

  labeling::LabelingOptions opts;
  opts.algorithms = {impute::Algorithm::kCdRec, impute::Algorithm::kSvdImpute,
                     impute::Algorithm::kLinearInterp};

  auto a = labeling::LabelByClusters(corpus, *clustering, opts, serial_ctx);
  auto b = labeling::LabelByClusters(corpus, *clustering, opts, parallel_ctx);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(a->labels, b->labels);
  EXPECT_EQ(a->imputation_runs, b->imputation_runs);
  ASSERT_EQ(a->rmse.rows(), b->rmse.rows());
  ASSERT_EQ(a->rmse.cols(), b->rmse.cols());
  for (std::size_t r = 0; r < a->rmse.rows(); ++r) {
    for (std::size_t c = 0; c < a->rmse.cols(); ++c) {
      EXPECT_EQ(a->rmse(r, c), b->rmse(r, c));
    }
  }
}

// ---- Degenerate corpora.

TEST(ParallelClusterEdgeCaseTest, EmptyCorpusRejectedByClustering) {
  auto clustering = IncrementalClustering({}, {});
  ASSERT_FALSE(clustering.ok());
  EXPECT_EQ(clustering.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParallelClusterEdgeCaseTest, EmptyCorpusCorrelationMatrixIsEmpty) {
  ThreadPool pool(TestThreadCount());
  const la::Matrix corr = PairwiseCorrelationMatrix({}, &pool);
  EXPECT_EQ(corr.rows(), 0u);
  EXPECT_EQ(corr.cols(), 0u);
}

TEST(ParallelClusterEdgeCaseTest, SingleSeriesIsOneSingletonCluster) {
  const std::vector<ts::TimeSeries> one = {MakeSine(64, 8.0)};
  ThreadPool pool(TestThreadCount());
  const la::Matrix corr = PairwiseCorrelationMatrix(one, &pool);
  ASSERT_EQ(corr.rows(), 1u);
  EXPECT_EQ(corr(0, 0), 1.0);
  auto clustering = IncrementalClustering(one, {});
  ASSERT_TRUE(clustering.ok()) << clustering.status();
  ASSERT_EQ(clustering->NumClusters(), 1u);
  EXPECT_EQ(clustering->clusters[0], std::vector<std::size_t>{0});
}

TEST(ParallelClusterEdgeCaseTest, ConstantSeriesAmongVaryingOnesIsHandled) {
  // A zero-variance series has no defined correlation; Pearson resolves it
  // to 0.0, and the clustering must stay well-formed and thread-independent.
  std::vector<ts::TimeSeries> corpus;
  for (std::size_t i = 0; i < 6; ++i) {
    corpus.push_back(MakeSine(96, 16.0, 0.05, 700 + i));
  }
  corpus.push_back(ConstantSeries(96, 3.5));

  const la::Matrix serial = PairwiseCorrelationMatrix(corpus);
  ThreadPool pool(TestThreadCount());
  const la::Matrix parallel = PairwiseCorrelationMatrix(corpus, &pool);
  const std::size_t constant_idx = corpus.size() - 1;
  for (std::size_t j = 0; j < corpus.size(); ++j) {
    if (j != constant_idx) {
      EXPECT_EQ(serial(constant_idx, j), 0.0);
    }
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      EXPECT_EQ(parallel(i, j), serial(i, j));
    }
  }

  ExecContext ctx(TestThreadCount());
  auto clustering = IncrementalClustering(corpus, {}, ctx);
  ASSERT_TRUE(clustering.ok()) << clustering.status();
  std::size_t covered = 0;
  for (const auto& c : clustering->clusters) covered += c.size();
  EXPECT_EQ(covered, corpus.size());
}

TEST(ParallelClusterEdgeCaseTest, AllConstantCorpusReturnsInvalidArgument) {
  // Regression: an all-constant corpus used to fall through to a correlation
  // matrix of undefined values instead of failing cleanly.
  std::vector<ts::TimeSeries> corpus;
  for (std::size_t i = 0; i < 5; ++i) {
    corpus.push_back(ConstantSeries(64, static_cast<double>(i)));
  }
  for (std::size_t threads : {std::size_t{1}, TestThreadCount()}) {
    ExecContext ctx(threads);
    auto clustering = IncrementalClustering(corpus, {}, ctx);
    ASSERT_FALSE(clustering.ok());
    EXPECT_EQ(clustering.status().code(), StatusCode::kInvalidArgument);
  }
}

}  // namespace
}  // namespace adarts::cluster
