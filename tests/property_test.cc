// Cross-module property tests: invariants that must hold over whole
// parameter grids rather than single examples.

#include <algorithm>
#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "automl/model_race.h"
#include "automl/pipeline.h"
#include "automl/recommender.h"
#include "automl/synthesizer.h"
#include "cluster/clustering.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "impute/cdrec.h"
#include "impute/imputer.h"
#include "la/decompositions.h"
#include "ml/metrics.h"
#include "ml/scaler.h"
#include "tda/delay_embedding.h"
#include "tda/persistence.h"
#include "tests/test_util.h"
#include "ts/fft.h"
#include "ts/missing.h"

namespace adarts {
namespace {

using ::adarts::testing::MakeBlobs;
using ::adarts::testing::MakeCorrelatedSet;

// ---------------------------------------------------------------------------
// Imputer x missing-pattern grid: every algorithm must fully repair every
// pattern, preserve observed values, and return finite numbers.

using ImputePatternParam = std::tuple<impute::Algorithm, ts::MissingPattern>;

class ImputerPatternGridTest
    : public ::testing::TestWithParam<ImputePatternParam> {};

TEST_P(ImputerPatternGridTest, RepairsPatternCompletely) {
  const auto [algorithm, pattern] = GetParam();
  const auto imputer = impute::CreateImputer(algorithm);
  std::vector<ts::TimeSeries> set = MakeCorrelatedSet(4, 128);
  Rng rng(31);
  for (auto& s : set) {
    ASSERT_TRUE(ts::InjectPattern(pattern, 0.12, &rng, &s).ok());
  }
  auto repaired = imputer->ImputeSet(set);
  ASSERT_TRUE(repaired.ok()) << imputer->name();
  for (std::size_t i = 0; i < set.size(); ++i) {
    EXPECT_FALSE((*repaired)[i].HasMissing());
    for (std::size_t t = 0; t < set[i].length(); ++t) {
      EXPECT_TRUE(std::isfinite((*repaired)[i].value(t)));
      if (!set[i].IsMissing(t)) {
        EXPECT_DOUBLE_EQ((*repaired)[i].value(t), set[i].value(t));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ImputerPatternGridTest,
    ::testing::Combine(
        ::testing::ValuesIn(impute::AllAlgorithms()),
        ::testing::Values(ts::MissingPattern::kSingleBlock,
                          ts::MissingPattern::kMultiBlock,
                          ts::MissingPattern::kTipOfSeries)),
    [](const ::testing::TestParamInfo<ImputePatternParam>& info) {
      return std::string(impute::AlgorithmToString(std::get<0>(info.param))) +
             "_" + ts::MissingPatternToString(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Pipeline grid: every classifier x scaler combination fits and emits valid
// probability distributions.

using PipelineParam = std::tuple<ml::ClassifierKind, ml::ScalerKind>;

class PipelineGridTest : public ::testing::TestWithParam<PipelineParam> {};

TEST_P(PipelineGridTest, FitsAndPredictsValidDistributions) {
  const auto [classifier, scaler] = GetParam();
  automl::Pipeline spec;
  spec.classifier = classifier;
  spec.params = ml::ResolveParams(classifier, {});
  spec.scaler = scaler;
  spec.scaler_param = 0.5;

  const ml::Dataset train = MakeBlobs(3, 15, 5, 71);
  auto fitted = automl::FitPipeline(spec, train);
  ASSERT_TRUE(fitted.ok()) << spec.ToString() << ": " << fitted.status();
  for (std::size_t i = 0; i < 5; ++i) {
    const la::Vector p = fitted->PredictProba(train.features[i]);
    ASSERT_EQ(p.size(), 3u);
    double sum = 0.0;
    for (double v : p) {
      EXPECT_GE(v, -1e-12) << spec.ToString();
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9) << spec.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PipelineGridTest,
    ::testing::Combine(::testing::ValuesIn(ml::AllClassifierKinds()),
                       ::testing::ValuesIn(ml::AllScalerKinds())),
    [](const ::testing::TestParamInfo<PipelineParam>& info) {
      return std::string(ml::ClassifierKindToString(std::get<0>(info.param))) +
             "_" + std::string(ml::ScalerKindToString(std::get<1>(info.param)));
    });

// ---------------------------------------------------------------------------
// Scaler properties.

class ScalerPropertyTest : public ::testing::TestWithParam<ml::ScalerKind> {};

TEST_P(ScalerPropertyTest, TransformIsDeterministic) {
  const ml::Dataset d = MakeBlobs(2, 25, 4, 73);
  auto scaler = ml::CreateScaler(GetParam());
  ASSERT_TRUE(scaler->Fit(d.features).ok());
  EXPECT_EQ(scaler->Transform(d.features[0]), scaler->Transform(d.features[0]));
}

TEST_P(ScalerPropertyTest, RefitOnSameDataIsIdentical) {
  const ml::Dataset d = MakeBlobs(2, 25, 4, 74);
  auto a = ml::CreateScaler(GetParam());
  auto b = ml::CreateScaler(GetParam());
  ASSERT_TRUE(a->Fit(d.features).ok());
  ASSERT_TRUE(b->Fit(d.features).ok());
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(a->Transform(d.features[i]), b->Transform(d.features[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllScalers, ScalerPropertyTest, ::testing::ValuesIn(ml::AllScalerKinds()),
    [](const ::testing::TestParamInfo<ml::ScalerKind>& info) {
      return std::string(ml::ScalerKindToString(info.param));
    });

// ---------------------------------------------------------------------------
// Metric properties.

TEST(MetricPropertyTest, RecallAtKMonotoneInK) {
  Rng rng(75);
  std::vector<int> y;
  std::vector<la::Vector> probas;
  for (int i = 0; i < 200; ++i) {
    y.push_back(rng.UniformInt(0, 4));
    la::Vector p(5);
    double sum = 0.0;
    for (double& v : p) {
      v = rng.Uniform();
      sum += v;
    }
    for (double& v : p) v /= sum;
    probas.push_back(std::move(p));
  }
  double prev = 0.0;
  for (std::size_t k = 1; k <= 5; ++k) {
    const double r = ml::RecallAtK(y, probas, k).value();
    EXPECT_GE(r, prev);
    prev = r;
  }
  EXPECT_DOUBLE_EQ(prev, 1.0);  // Recall@num_classes is always 1
}

TEST(MetricPropertyTest, MrrBoundedByTopOneAndOne) {
  Rng rng(76);
  std::vector<int> y;
  std::vector<la::Vector> probas;
  for (int i = 0; i < 200; ++i) {
    y.push_back(rng.UniformInt(0, 3));
    la::Vector p(4);
    double sum = 0.0;
    for (double& v : p) {
      v = rng.Uniform();
      sum += v;
    }
    for (double& v : p) v /= sum;
    probas.push_back(std::move(p));
  }
  const double mrr = ml::MeanReciprocalRank(y, probas).value();
  const double top1 = ml::RecallAtK(y, probas, 1).value();
  EXPECT_GE(mrr, top1);        // rank-1 hits contribute 1 each
  EXPECT_GE(mrr, 1.0 / 4.0);   // worst case: always last
  EXPECT_LE(mrr, 1.0);
}

TEST(MetricPropertyTest, WelchTTestIsSymmetric) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    la::Vector a(10), b(12);
    for (double& x : a) x = rng.Normal(0, 1);
    for (double& x : b) x = rng.Normal(0.3, 1.5);
    EXPECT_NEAR(ml::WelchTTestPValue(a, b), ml::WelchTTestPValue(b, a), 1e-12);
  }
}

TEST(MetricPropertyTest, WelchPValueInUnitInterval) {
  Rng rng(78);
  for (int trial = 0; trial < 50; ++trial) {
    la::Vector a(5), b(7);
    for (double& x : a) x = rng.Normal(0, 1);
    for (double& x : b) x = rng.Normal(rng.Uniform(-3, 3), rng.Uniform(0.1, 2));
    const double p = ml::WelchTTestPValue(a, b);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

// ---------------------------------------------------------------------------
// Synthesizer properties over long mutation chains.

TEST(SynthesizerPropertyTest, LongMutationChainsStayValid) {
  automl::Synthesizer synth(79);
  for (int chain = 0; chain < 5; ++chain) {
    automl::Pipeline p = synth.RandomPipeline();
    for (int step = 0; step < 200; ++step) {
      const automl::Pipeline child = synth.Mutate(p);
      // Child always differs from parent in exactly its mutated aspect.
      EXPECT_NE(child.ToString() + std::to_string(child.scaler_param),
                p.ToString() + std::to_string(p.scaler_param));
      // All parameters remain within spec bounds.
      for (const auto& spec : ml::ParamSpecsFor(child.classifier)) {
        const double v = child.params.at(spec.name);
        EXPECT_GE(v, spec.min_value);
        EXPECT_LE(v, spec.max_value);
        if (spec.integer) {
          EXPECT_DOUBLE_EQ(v, std::round(v));
        }
      }
      EXPECT_GE(child.scaler_param, 0.1);
      EXPECT_LE(child.scaler_param, 1.0);
      p = child;
    }
  }
}

// ---------------------------------------------------------------------------
// TDA properties.

TEST(TdaPropertyTest, PersistencePairsAreOrdered) {
  Rng rng(80);
  for (int trial = 0; trial < 10; ++trial) {
    tda::PointCloud cloud;
    const std::size_t n = 8 + trial * 2;
    for (std::size_t i = 0; i < n; ++i) {
      cloud.push_back({rng.Normal(0, 1), rng.Normal(0, 1)});
    }
    auto diagram = tda::ComputeRipsPersistence(cloud);
    ASSERT_TRUE(diagram.ok());
    for (const auto& pair : diagram->pairs) {
      EXPECT_LE(pair.birth, pair.death);
      EXPECT_LE(pair.death, diagram->max_filtration + 1e-12);
      EXPECT_GE(pair.birth, 0.0);
    }
  }
}

TEST(TdaPropertyTest, H0CountEqualsPointCount) {
  // Every point is born at filtration 0: the number of H0 pairs (finite +
  // essential) equals the number of points.
  Rng rng(81);
  for (std::size_t n : {4u, 9u, 16u}) {
    tda::PointCloud cloud;
    for (std::size_t i = 0; i < n; ++i) {
      cloud.push_back({rng.Normal(0, 1), rng.Normal(0, 1), rng.Normal(0, 1)});
    }
    auto diagram = tda::ComputeRipsPersistence(cloud);
    ASSERT_TRUE(diagram.ok());
    EXPECT_EQ(diagram->Dimension(0).size(), n);
  }
}

// ---------------------------------------------------------------------------
// FFT / spectral properties.

TEST(FftPropertyTest, ParsevalHolds) {
  Rng rng(82);
  std::vector<std::complex<double>> x(128);
  double time_energy = 0.0;
  for (auto& v : x) {
    v = {rng.Normal(0, 1), rng.Normal(0, 1)};
    time_energy += std::norm(v);
  }
  auto freq = x;
  ts::Fft(&freq);
  double freq_energy = 0.0;
  for (const auto& v : freq) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / 128.0, time_energy, 1e-8 * time_energy);
}

TEST(FftPropertyTest, SpectrumInvariantToMeanShift) {
  const la::Vector base = testing::MakeSine(128, 16.0).values();
  la::Vector shifted = base;
  for (double& v : shifted) v += 100.0;
  const la::Vector s1 = ts::PowerSpectrum(base);
  const la::Vector s2 = ts::PowerSpectrum(shifted);
  for (std::size_t k = 1; k < s1.size(); ++k) {
    EXPECT_NEAR(s1[k], s2[k], 1e-6 * (1.0 + s1[k]));
  }
}

// ---------------------------------------------------------------------------
// Centroid decomposition: truncation error decreases monotonically in rank.

TEST(CdPropertyTest, TruncationErrorMonotoneInRank) {
  Rng rng(83);
  la::Matrix x(24, 6);
  for (std::size_t i = 0; i < 24; ++i) {
    for (std::size_t j = 0; j < 6; ++j) x(i, j) = rng.Normal(0, 1);
  }
  double prev_err = 1e300;
  for (std::size_t rank = 1; rank <= 6; ++rank) {
    auto cd = impute::ComputeCentroidDecomposition(x, rank);
    ASSERT_TRUE(cd.ok());
    const double err =
        cd->loadings.Multiply(cd->relevance.Transpose()).Subtract(x).FrobeniusNorm();
    EXPECT_LE(err, prev_err + 1e-9);
    prev_err = err;
  }
  EXPECT_NEAR(prev_err, 0.0, 1e-8);  // full rank reconstructs exactly
}

// ---------------------------------------------------------------------------
// SVD: rank-k truncation is never worse than rank-(k-1) (Eckart-Young
// consistency of our Jacobi SVD).

TEST(SvdPropertyTest, TruncationErrorMonotoneInRank) {
  Rng rng(84);
  la::Matrix x(20, 8);
  for (std::size_t i = 0; i < 20; ++i) {
    for (std::size_t j = 0; j < 8; ++j) x(i, j) = rng.Normal(0, 1);
  }
  auto svd = la::ComputeSvd(x);
  ASSERT_TRUE(svd.ok());
  double prev_err = 1e300;
  for (std::size_t rank = 1; rank <= 8; ++rank) {
    la::Matrix recon(20, 8);
    for (std::size_t r = 0; r < rank; ++r) {
      for (std::size_t i = 0; i < 20; ++i) {
        for (std::size_t j = 0; j < 8; ++j) {
          recon(i, j) += svd->u(i, r) * svd->singular_values[r] * svd->v(j, r);
        }
      }
    }
    const double err = recon.Subtract(x).FrobeniusNorm();
    EXPECT_LE(err, prev_err + 1e-9);
    prev_err = err;
  }
}

// ---------------------------------------------------------------------------
// Parallel-path properties: the pooled correlation matrix keeps its algebraic
// invariants on arbitrary random corpora, and parallel committee refits vote
// exactly like serial ones.

TEST(ParallelPropertyTest, CorrelationMatrixSymmetricUnitDiagonalOnRandomCorpora) {
  ThreadPool pool(testing::TestThreadCount());
  for (std::uint64_t seed : {101u, 202u, 303u, 404u, 505u}) {
    Rng rng(seed);
    std::vector<ts::TimeSeries> corpus;
    const std::size_t n = 3 + static_cast<std::size_t>(rng.UniformInt(0, 9));
    const std::size_t length = 64 + static_cast<std::size_t>(rng.UniformInt(0, 64));
    for (std::size_t i = 0; i < n; ++i) {
      corpus.push_back(testing::MakeSine(
          length, rng.Uniform(4.0, 40.0), rng.Uniform(0.0, 0.5),
          seed * 100 + i, rng.Uniform(0.5, 2.0), rng.Uniform(0.0, 3.0)));
    }
    const la::Matrix serial = cluster::PairwiseCorrelationMatrix(corpus);
    const la::Matrix parallel =
        cluster::PairwiseCorrelationMatrix(corpus, &pool);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(parallel(i, i), 1.0) << "seed " << seed;
      for (std::size_t j = 0; j < n; ++j) {
        EXPECT_EQ(parallel(i, j), parallel(j, i)) << "seed " << seed;
        EXPECT_LE(std::fabs(parallel(i, j)), 1.0 + 1e-12) << "seed " << seed;
        EXPECT_EQ(parallel(i, j), serial(i, j)) << "seed " << seed;
      }
    }
  }
}

TEST(ParallelPropertyTest, ParallelFromRaceCommitteesVoteIdenticallyToSerial) {
  const ml::Dataset train = MakeBlobs(3, 25, 5, 91);
  const ml::Dataset test = MakeBlobs(3, 8, 5, 92);
  automl::ModelRaceOptions race;
  race.num_seed_pipelines = 12;
  race.num_partial_sets = 2;
  race.num_folds = 2;
  race.seed = 93;
  auto report = automl::RunModelRace(train, test, race);
  ASSERT_TRUE(report.ok()) << report.status();

  auto serial = automl::VotingRecommender::FromRace(*report, train, nullptr);
  ASSERT_TRUE(serial.ok()) << serial.status();
  ThreadPool pool(testing::TestThreadCount());
  auto parallel = automl::VotingRecommender::FromRace(*report, train, &pool);
  ASSERT_TRUE(parallel.ok()) << parallel.status();

  ASSERT_EQ(parallel->committee_size(), serial->committee_size());
  for (std::size_t i = 0; i < serial->committee().size(); ++i) {
    EXPECT_EQ(parallel->committee()[i].spec.ToString(),
              serial->committee()[i].spec.ToString());
  }
  for (const la::Vector& features : train.features) {
    const la::Vector pa = parallel->PredictProba(features);
    const la::Vector pb = serial->PredictProba(features);
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t c = 0; c < pa.size(); ++c) {
      EXPECT_EQ(pa[c], pb[c]);
    }
    EXPECT_EQ(parallel->Recommend(features), serial->Recommend(features));
    EXPECT_EQ(parallel->Ranking(features), serial->Ranking(features));
  }
}

}  // namespace
}  // namespace adarts
