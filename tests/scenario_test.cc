// Property-style tests over the missingness-scenario registry (ts/scenario):
// every registered scenario, swept over its rate grid and several random
// corpora, must (a) land near the requested missing fraction, (b) be a
// deterministic function of the seed, (c) never mask a series completely,
// and (d) leave ground-truth values untouched under the mask. The
// overlapping/disjoint multi-series layouts get their geometric contracts
// checked explicitly — those are the properties the recommender win-rate
// sweep leans on.

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "ts/missing.h"
#include "ts/scenario.h"

namespace adarts::ts {
namespace {

using ::adarts::testing::MakeCorrelatedSet;
using ::adarts::testing::MakeSine;

std::vector<TimeSeries> MakeCorpus(std::size_t series, std::size_t length,
                                   std::uint64_t seed) {
  auto set = MakeCorrelatedSet(series, length, /*noise=*/0.1, seed);
  // De-correlate half the corpus a bit so seasonal-gap period estimation
  // sees realistic (not textbook-clean) inputs.
  for (std::size_t i = 0; i < set.size(); i += 2) {
    set[i] = MakeSine(length, 24.0 + static_cast<double>(i), 0.3, seed + 100 + i);
  }
  return set;
}

double MissingFraction(const std::vector<TimeSeries>& set) {
  std::size_t missing = 0;
  std::size_t total = 0;
  for (const auto& s : set) {
    missing += s.MissingCount();
    total += s.length();
  }
  return total == 0 ? 0.0 : static_cast<double>(missing) /
                                static_cast<double>(total);
}

TEST(ScenarioRegistryTest, RegistryIsPopulatedWithUniqueNamedScenarios) {
  const auto& all = AllScenarios();
  ASSERT_GE(all.size(), 8u);
  std::vector<std::string> names;
  for (const auto& s : all) {
    EXPECT_FALSE(s.name.empty());
    EXPECT_FALSE(s.description.empty());
    EXPECT_NE(s.apply, nullptr);
    EXPECT_FALSE(s.rates.empty());
    for (double r : s.rates) {
      EXPECT_GT(r, 0.0);
      EXPECT_LT(r, 1.0);
    }
    names.emplace_back(s.name);
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end())
      << "duplicate scenario names in the registry";
}

TEST(ScenarioRegistryTest, FindScenarioByNameAndUnknownName) {
  const auto mcar = FindScenario("mcar");
  ASSERT_TRUE(mcar.ok());
  EXPECT_EQ(mcar->name, "mcar");
  const auto unknown = FindScenario("definitely_not_a_scenario");
  ASSERT_FALSE(unknown.ok());
  // The error should list the known names, so a typo in a bench flag is
  // self-diagnosing.
  EXPECT_NE(unknown.status().ToString().find("mcar"), std::string::npos);
}

TEST(ScenarioPropertyTest, HitsRequestedMissingFractionWithinTolerance) {
  for (const auto& scenario : AllScenarios()) {
    for (double rate : scenario.rates) {
      for (std::uint64_t seed : {11u, 29u, 83u}) {
        auto set = MakeCorpus(6, 192, seed);
        Rng rng(seed * 7 + 1);
        ASSERT_TRUE(ApplyScenario(scenario, rate, &rng, &set).ok())
            << scenario.name << " rate " << rate;
        const double fraction = MissingFraction(set);
        // Generators are stochastic and block lengths are clamped to whole
        // positions / periods, so the contract is a loose band, not
        // equality: monotone_tail alone draws its length from
        // [0.5, 1.5] * rate.
        EXPECT_GE(fraction, rate / 4.0)
            << scenario.name << " rate " << rate << " seed " << seed;
        EXPECT_LE(fraction, rate * 3.0 + 4.0 / 192.0)
            << scenario.name << " rate " << rate << " seed " << seed;
      }
    }
  }
}

TEST(ScenarioPropertyTest, DeterministicBitForBitForFixedSeed) {
  for (const auto& scenario : AllScenarios()) {
    const double rate = scenario.rates.front();
    auto first = MakeCorpus(5, 160, 17);
    auto second = MakeCorpus(5, 160, 17);
    Rng rng_a(999);
    Rng rng_b(999);
    ASSERT_TRUE(ApplyScenario(scenario, rate, &rng_a, &first).ok());
    ASSERT_TRUE(ApplyScenario(scenario, rate, &rng_b, &second).ok());
    for (std::size_t i = 0; i < first.size(); ++i) {
      EXPECT_EQ(first[i].missing_mask(), second[i].missing_mask())
          << scenario.name << " series " << i;
    }
    // A different seed must not reproduce the same masks for every
    // stochastic scenario (all of them draw at least a position).
    auto third = MakeCorpus(5, 160, 17);
    Rng rng_c(1000);
    ASSERT_TRUE(ApplyScenario(scenario, rate, &rng_c, &third).ok());
    bool any_difference = false;
    for (std::size_t i = 0; i < first.size() && !any_difference; ++i) {
      any_difference = first[i].missing_mask() != third[i].missing_mask();
    }
    EXPECT_TRUE(any_difference)
        << scenario.name << ": masks identical across different seeds";
  }
}

TEST(ScenarioPropertyTest, NeverMasksASeriesCompletely) {
  for (const auto& scenario : AllScenarios()) {
    const double rate = scenario.rates.back();  // the most aggressive rate
    for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
      auto set = MakeCorpus(8, 96, seed);
      Rng rng(seed);
      ASSERT_TRUE(ApplyScenario(scenario, rate, &rng, &set).ok());
      for (std::size_t i = 0; i < set.size(); ++i) {
        EXPECT_LT(set[i].MissingCount(), set[i].length())
            << scenario.name << " fully masked series " << i;
        // Index 0 stays observed by contract: every imputer has an anchor.
        EXPECT_FALSE(set[i].IsMissing(0)) << scenario.name;
      }
    }
  }
}

TEST(ScenarioPropertyTest, MaskingRetainsGroundTruthValues) {
  for (const auto& scenario : AllScenarios()) {
    auto set = MakeCorpus(4, 128, 23);
    const auto original = set;
    Rng rng(55);
    ASSERT_TRUE(
        ApplyScenario(scenario, scenario.rates.front(), &rng, &set).ok());
    std::size_t masked_total = 0;
    for (std::size_t i = 0; i < set.size(); ++i) {
      masked_total += set[i].MissingCount();
      for (std::size_t t = 0; t < set[i].length(); ++t) {
        EXPECT_EQ(set[i].value(t), original[i].value(t))
            << scenario.name << ": value rewritten at " << t
            << " — ImputationRmse ground truth destroyed";
      }
    }
    EXPECT_GT(masked_total, 0u) << scenario.name << " masked nothing";
  }
}

TEST(ScenarioPropertyTest, OverlappingBlocksOverlapAcrossSeries) {
  const auto scenario = FindScenario("overlapping_blocks");
  ASSERT_TRUE(scenario.ok());
  for (std::uint64_t seed : {3u, 31u, 71u}) {
    auto set = MakeCorpus(6, 192, seed);
    Rng rng(seed);
    ASSERT_TRUE(ApplyScenario(*scenario, 0.1, &rng, &set).ok());
    // Count positions masked in at least two series: the defining property
    // of the overlapping layout (what makes cross-series imputers struggle).
    std::size_t shared = 0;
    for (std::size_t t = 0; t < set.front().length(); ++t) {
      std::size_t masked_here = 0;
      for (const auto& s : set) masked_here += s.IsMissing(t) ? 1 : 0;
      if (masked_here >= 2) ++shared;
    }
    EXPECT_GT(shared, 0u) << "seed " << seed
                          << ": no position masked in >= 2 series";
  }
}

TEST(ScenarioPropertyTest, DisjointBlocksDoNotOverlapWhenSlotsSuffice) {
  const auto scenario = FindScenario("disjoint_blocks");
  ASSERT_TRUE(scenario.ok());
  // 4 series at rate 0.05 on length 192: block length ~10, slots ~17 >= 4,
  // so the layout owes us strict disjointness.
  for (std::uint64_t seed : {7u, 13u}) {
    auto set = MakeCorpus(4, 192, seed);
    Rng rng(seed);
    ASSERT_TRUE(ApplyScenario(*scenario, 0.05, &rng, &set).ok());
    for (std::size_t t = 0; t < set.front().length(); ++t) {
      std::size_t masked_here = 0;
      for (const auto& s : set) masked_here += s.IsMissing(t) ? 1 : 0;
      EXPECT_LE(masked_here, 1u)
          << "seed " << seed << ": position " << t
          << " masked in " << masked_here << " series";
    }
  }
}

TEST(ScenarioErrorTest, RejectsBadRatesAndBadSets) {
  const auto& scenario = AllScenarios().front();
  Rng rng(1);
  auto set = MakeCorpus(3, 64, 9);
  EXPECT_FALSE(ApplyScenario(scenario, 0.0, &rng, &set).ok());
  EXPECT_FALSE(ApplyScenario(scenario, 1.0, &rng, &set).ok());
  EXPECT_FALSE(ApplyScenario(scenario, -0.2, &rng, &set).ok());

  std::vector<TimeSeries> empty;
  EXPECT_FALSE(ApplyScenario(scenario, 0.1, &rng, &empty).ok());

  // Too short for any block layout.
  std::vector<TimeSeries> tiny;
  tiny.emplace_back(la::Vector{1.0, 2.0, 3.0});
  EXPECT_FALSE(ApplyScenario(scenario, 0.1, &rng, &tiny).ok());

  // Mixed lengths: set-wise layouts need one shared length.
  auto mixed = MakeCorpus(2, 64, 9);
  mixed.push_back(MakeSine(96, 24.0));
  EXPECT_FALSE(ApplyScenario(scenario, 0.1, &rng, &mixed).ok());
}

TEST(ScenarioErrorTest, SeasonalGapsFallsBackWhenPeriodUndetectable) {
  // White noise has no dominant period; the generator must fall back to a
  // default cycle rather than fail or mask nothing.
  const auto scenario = FindScenario("seasonal_gaps");
  ASSERT_TRUE(scenario.ok());
  Rng noise_rng(77);
  std::vector<TimeSeries> set;
  for (int s = 0; s < 3; ++s) {
    la::Vector v(128);
    for (auto& x : v) x = noise_rng.Normal(0.0, 1.0);
    set.emplace_back(std::move(v));
  }
  Rng rng(5);
  ASSERT_TRUE(ApplyScenario(*scenario, 0.1, &rng, &set).ok());
  EXPECT_GT(MissingFraction(set), 0.0);
}

}  // namespace
}  // namespace adarts::ts
