// Save/Load round-trip tests of the deterministic model bundle.

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "adarts/adarts.h"
#include "tests/test_util.h"

namespace adarts {
namespace {

std::string TempBundlePath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

Result<Adarts> TrainSmallEngine(std::uint64_t seed = 17) {
  const ml::Dataset labeled = testing::MakeBlobs(3, 30, 6, 41);
  const std::vector<impute::Algorithm> pool = {
      impute::Algorithm::kCdRec, impute::Algorithm::kTkcm,
      impute::Algorithm::kLinearInterp};
  automl::ModelRaceOptions race;
  race.num_seed_pipelines = 12;
  race.num_partial_sets = 2;
  return Adarts::TrainFromLabeled(labeled, pool, {}, race, seed);
}

TEST(SerializationTest, RoundTripReproducesRecommendations) {
  auto engine = TrainSmallEngine();
  ASSERT_TRUE(engine.ok()) << engine.status();
  const std::string path = TempBundlePath("adarts_bundle_roundtrip.model");
  ASSERT_TRUE(engine->Save(path).ok());

  auto loaded = Adarts::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->committee_size(), engine->committee_size());
  EXPECT_EQ(loaded->algorithm_pool(), engine->algorithm_pool());

  // Bit-identical soft votes on every training sample.
  for (const auto& f : engine->training_data().features) {
    EXPECT_EQ(engine->PredictProba(f), loaded->PredictProba(f));
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, RoundTripPreservesCommitteeSpecs) {
  auto engine = TrainSmallEngine(23);
  ASSERT_TRUE(engine.ok());
  const std::string path = TempBundlePath("adarts_bundle_specs.model");
  ASSERT_TRUE(engine->Save(path).ok());
  auto loaded = Adarts::Load(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->committee().size(), engine->committee().size());
  for (std::size_t i = 0; i < loaded->committee().size(); ++i) {
    EXPECT_EQ(loaded->committee()[i].spec.ToString(),
              engine->committee()[i].spec.ToString());
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, RoundTripPreservesExtractorOptions) {
  const ml::Dataset labeled = testing::MakeBlobs(2, 20, 4, 5);
  const std::vector<impute::Algorithm> pool = {
      impute::Algorithm::kCdRec, impute::Algorithm::kTkcm};
  features::FeatureExtractorOptions fopts;
  fopts.topological = false;
  fopts.max_acf_lag = 12;
  automl::ModelRaceOptions race;
  race.num_seed_pipelines = 12;
  race.num_partial_sets = 2;
  auto engine = Adarts::TrainFromLabeled(labeled, pool, fopts, race);
  ASSERT_TRUE(engine.ok());
  const std::string path = TempBundlePath("adarts_bundle_extractor.model");
  ASSERT_TRUE(engine->Save(path).ok());
  auto loaded = Adarts::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded->feature_extractor().options().topological);
  EXPECT_EQ(loaded->feature_extractor().options().max_acf_lag, 12u);
  EXPECT_EQ(loaded->feature_extractor().NumFeatures(),
            engine->feature_extractor().NumFeatures());
  std::remove(path.c_str());
}

TEST(SerializationTest, LoadRejectsMissingFile) {
  EXPECT_FALSE(Adarts::Load("/nonexistent/bundle.model").ok());
}

TEST(SerializationTest, LoadRejectsCorruptBundle) {
  const std::string path = TempBundlePath("adarts_bundle_corrupt.model");
  {
    std::ofstream file(path);
    file << "NOT_A_MODEL\njunk\n";
  }
  EXPECT_FALSE(Adarts::Load(path).ok());
  {
    std::ofstream file(path);
    file << "ADARTS_MODEL_V1\nextractor 1 1 3 0 24\n";  // truncated
  }
  EXPECT_FALSE(Adarts::Load(path).ok());
  std::remove(path.c_str());
}

TEST(SerializationTest, SaveIsDeterministic) {
  auto engine = TrainSmallEngine(31);
  ASSERT_TRUE(engine.ok());
  const std::string a = TempBundlePath("adarts_bundle_a.model");
  const std::string b = TempBundlePath("adarts_bundle_b.model");
  ASSERT_TRUE(engine->Save(a).ok());
  ASSERT_TRUE(engine->Save(b).ok());
  std::ifstream fa(a), fb(b);
  std::string ca((std::istreambuf_iterator<char>(fa)),
                 std::istreambuf_iterator<char>());
  std::string cb((std::istreambuf_iterator<char>(fb)),
                 std::istreambuf_iterator<char>());
  EXPECT_EQ(ca, cb);
  EXPECT_FALSE(ca.empty());
  std::remove(a.c_str());
  std::remove(b.c_str());
}

}  // namespace
}  // namespace adarts
