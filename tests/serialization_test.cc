// Save/Load round-trip tests of the deterministic model bundle.

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "adarts/adarts.h"
#include "common/failpoint.h"
#include "tests/test_util.h"

namespace adarts {
namespace {

std::string TempBundlePath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

Result<Adarts> TrainSmallEngine(std::uint64_t seed = 17) {
  const ml::Dataset labeled = testing::MakeBlobs(3, 30, 6, 41);
  const std::vector<impute::Algorithm> pool = {
      impute::Algorithm::kCdRec, impute::Algorithm::kTkcm,
      impute::Algorithm::kLinearInterp};
  automl::ModelRaceOptions race;
  race.num_seed_pipelines = 12;
  race.num_partial_sets = 2;
  return Adarts::TrainFromLabeled(labeled, pool, {}, race, seed);
}

TEST(SerializationTest, RoundTripReproducesRecommendations) {
  auto engine = TrainSmallEngine();
  ASSERT_TRUE(engine.ok()) << engine.status();
  const std::string path = TempBundlePath("adarts_bundle_roundtrip.model");
  ASSERT_TRUE(engine->Save(path).ok());

  auto loaded = Adarts::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->committee_size(), engine->committee_size());
  EXPECT_EQ(loaded->algorithm_pool(), engine->algorithm_pool());

  // Bit-identical soft votes on every training sample.
  for (const auto& f : engine->training_data().features) {
    EXPECT_EQ(engine->PredictProba(f), loaded->PredictProba(f));
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, RoundTripPreservesCommitteeSpecs) {
  auto engine = TrainSmallEngine(23);
  ASSERT_TRUE(engine.ok());
  const std::string path = TempBundlePath("adarts_bundle_specs.model");
  ASSERT_TRUE(engine->Save(path).ok());
  auto loaded = Adarts::Load(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->committee().size(), engine->committee().size());
  for (std::size_t i = 0; i < loaded->committee().size(); ++i) {
    EXPECT_EQ(loaded->committee()[i].spec.ToString(),
              engine->committee()[i].spec.ToString());
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, RoundTripPreservesExtractorOptions) {
  const ml::Dataset labeled = testing::MakeBlobs(2, 20, 4, 5);
  const std::vector<impute::Algorithm> pool = {
      impute::Algorithm::kCdRec, impute::Algorithm::kTkcm};
  features::FeatureExtractorOptions fopts;
  fopts.topological = false;
  fopts.max_acf_lag = 12;
  automl::ModelRaceOptions race;
  race.num_seed_pipelines = 12;
  race.num_partial_sets = 2;
  auto engine = Adarts::TrainFromLabeled(labeled, pool, fopts, race);
  ASSERT_TRUE(engine.ok());
  const std::string path = TempBundlePath("adarts_bundle_extractor.model");
  ASSERT_TRUE(engine->Save(path).ok());
  auto loaded = Adarts::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded->feature_extractor().options().topological);
  EXPECT_EQ(loaded->feature_extractor().options().max_acf_lag, 12u);
  EXPECT_EQ(loaded->feature_extractor().NumFeatures(),
            engine->feature_extractor().NumFeatures());
  std::remove(path.c_str());
}

TEST(SerializationTest, LoadRejectsMissingFile) {
  EXPECT_FALSE(Adarts::Load("/nonexistent/bundle.model").ok());
}

TEST(SerializationTest, LoadRejectsCorruptBundle) {
  const std::string path = TempBundlePath("adarts_bundle_corrupt.model");
  {
    std::ofstream file(path);
    file << "NOT_A_MODEL\njunk\n";
  }
  EXPECT_FALSE(Adarts::Load(path).ok());
  {
    std::ofstream file(path);
    file << "ADARTS_MODEL_V1\nextractor 1 1 3 0 24\n";  // truncated
  }
  EXPECT_FALSE(Adarts::Load(path).ok());
  std::remove(path.c_str());
}

/// Payload bytes of a V2 bundle: everything after the magic and header
/// lines. The header carries a wall-clock `created_unix`, so determinism is
/// a property of the payload (and its checksum), not the whole file.
std::string PayloadOf(const std::string& bundle) {
  const std::size_t magic_end = bundle.find('\n');
  EXPECT_NE(magic_end, std::string::npos);
  const std::size_t header_end = bundle.find('\n', magic_end + 1);
  EXPECT_NE(header_end, std::string::npos);
  return bundle.substr(header_end + 1);
}

TEST(SerializationTest, SaveIsDeterministic) {
  auto engine = TrainSmallEngine(31);
  ASSERT_TRUE(engine.ok());
  const std::string a = TempBundlePath("adarts_bundle_a.model");
  const std::string b = TempBundlePath("adarts_bundle_b.model");
  ASSERT_TRUE(engine->Save(a).ok());
  ASSERT_TRUE(engine->Save(b).ok());
  std::ifstream fa(a), fb(b);
  std::string ca((std::istreambuf_iterator<char>(fa)),
                 std::istreambuf_iterator<char>());
  std::string cb((std::istreambuf_iterator<char>(fb)),
                 std::istreambuf_iterator<char>());
  EXPECT_EQ(PayloadOf(ca), PayloadOf(cb));
  EXPECT_FALSE(PayloadOf(ca).empty());
  // The headers agree on everything but the creation timestamp: same
  // format, same engine version, same payload size, same content checksum.
  auto ha = ReadSnapshotHeader(a);
  auto hb = ReadSnapshotHeader(b);
  ASSERT_TRUE(ha.ok()) << ha.status();
  ASSERT_TRUE(hb.ok()) << hb.status();
  EXPECT_EQ(ha->format_version, hb->format_version);
  EXPECT_EQ(ha->engine_version, hb->engine_version);
  EXPECT_EQ(ha->payload_bytes, hb->payload_bytes);
  EXPECT_EQ(ha->checksum, hb->checksum);
  std::remove(a.c_str());
  std::remove(b.c_str());
}

// --- crash-safe snapshot publishing --------------------------------------

std::string ReadAll(const std::string& path) {
  std::ifstream file(path);
  return std::string((std::istreambuf_iterator<char>(file)),
                     std::istreambuf_iterator<char>());
}

/// True when any `<basename>.tmp.*` sibling of `path` exists — a leaked
/// private temp file from an interrupted Save.
bool HasTempSibling(const std::string& path) {
  const std::filesystem::path target(path);
  const std::string prefix = target.filename().string() + ".tmp.";
  for (const auto& entry :
       std::filesystem::directory_iterator(target.parent_path())) {
    if (entry.path().filename().string().rfind(prefix, 0) == 0) return true;
  }
  return false;
}

TEST(SerializationTest, SaveLeavesNoTempFileBehind) {
  auto engine = TrainSmallEngine(51);
  ASSERT_TRUE(engine.ok());
  const std::string path = TempBundlePath("adarts_bundle_atomic.model");
  ASSERT_TRUE(engine->Save(path).ok());
  EXPECT_FALSE(HasTempSibling(path));
  std::remove(path.c_str());
}

TEST(SerializationTest, SaveToUnwritableDirectoryReturnsInternal) {
  auto engine = TrainSmallEngine(52);
  ASSERT_TRUE(engine.ok());
  // Was miscoded as NotFound — "not found" describes a read of something
  // absent, not a failed write.
  Status status = engine->Save("/nonexistent_dir_zz/bundle.model");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

TEST(SerializationTest, FailedWriteLeavesExistingBundleIntact) {
  auto first = TrainSmallEngine(61);
  auto second = TrainSmallEngine(62);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  const std::string path = TempBundlePath("adarts_bundle_failwrite.model");
  ASSERT_TRUE(first->Save(path).ok());
  const std::string before = ReadAll(path);
  ASSERT_FALSE(before.empty());

  {
    // The injected write failure (ENOSPC, a crash mid-write…) hits the
    // private temp file; the published snapshot must not change by a byte.
    ScopedFailpoint fp("adarts.save.write");
    Status status = second->Save(path);
    ASSERT_FALSE(status.ok());
  }
  EXPECT_EQ(ReadAll(path), before);
  EXPECT_FALSE(HasTempSibling(path));

  auto loaded = Adarts::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  for (const auto& f : first->training_data().features) {
    EXPECT_EQ(loaded->PredictProba(f), first->PredictProba(f));
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, KillMidSavePreservesPriorSnapshotBitIdentically) {
  auto first = TrainSmallEngine(63);
  auto second = TrainSmallEngine(64);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  const std::string path = TempBundlePath("adarts_bundle_killcommit.model");
  ASSERT_TRUE(first->Save(path).ok());
  const std::string before = ReadAll(path);

  {
    // Models `kill -9` between the completed temp write and the rename: the
    // new bytes exist but are never published.
    ScopedFailpoint fp("adarts.save.commit");
    Status status = second->Save(path);
    ASSERT_FALSE(status.ok());
  }
  EXPECT_EQ(ReadAll(path), before);

  auto loaded = Adarts::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  for (const auto& f : first->training_data().features) {
    EXPECT_EQ(loaded->PredictProba(f), first->PredictProba(f));
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, StaleTempFromCrashedProcessDoesNotBlockSave) {
  auto engine = TrainSmallEngine(65);
  ASSERT_TRUE(engine.ok());
  const std::string path = TempBundlePath("adarts_bundle_stale.model");
  // A temp file abandoned by a crashed writer (different pid) must neither
  // fail nor corrupt a fresh Save.
  const std::string stale = path + ".tmp.99999";
  {
    std::ofstream file(stale);
    file << "half-written junk";
  }
  ASSERT_TRUE(engine->Save(path).ok());
  auto loaded = Adarts::Load(path);
  EXPECT_TRUE(loaded.ok()) << loaded.status();
  std::remove(stale.c_str());
  std::remove(path.c_str());
}

// --- hostile and truncated bundles ---------------------------------------

Status LoadContent(const std::string& content, const char* name) {
  const std::string path = TempBundlePath(name);
  {
    std::ofstream file(path, std::ios::trunc);
    file << content;
  }
  auto loaded = Adarts::Load(path);
  std::remove(path.c_str());
  return loaded.ok() ? Status::OK() : loaded.status();
}

std::string ReplaceFirst(std::string content, const std::string& from,
                         const std::string& to) {
  const std::size_t pos = content.find(from);
  EXPECT_NE(pos, std::string::npos) << "pattern '" << from << "' not found";
  if (pos != std::string::npos) content.replace(pos, from.size(), to);
  return content;
}

TEST(SerializationTest, LoadRejectsHostileSizesWithoutAllocating) {
  auto engine = TrainSmallEngine(71);
  ASSERT_TRUE(engine.ok());
  const std::string path = TempBundlePath("adarts_bundle_hostile.model");
  ASSERT_TRUE(engine->Save(path).ok());
  const std::string good = ReadAll(path);
  std::remove(path.c_str());

  // Each corruption patches one size field to an absurd value. Load must
  // reject from the declared bound — InvalidArgument, not a multi-GB
  // reserve on attacker-controlled text.
  const std::string pool_line =
      "pool " + std::to_string(engine->algorithm_pool().size());
  const std::string committee_line =
      "committee " + std::to_string(engine->committee_size());
  const std::string dataset_line =
      "dataset " + std::to_string(engine->training_data().size()) + " " +
      std::to_string(engine->training_data().dim());
  const std::string hostile[] = {
      ReplaceFirst(good, pool_line, "pool 184467440737095516"),
      ReplaceFirst(good, committee_line, "committee 99999999999"),
      ReplaceFirst(good, dataset_line, "dataset 99999999 99999999"),
      ReplaceFirst(good, dataset_line, "dataset 0 0"),
  };
  for (std::size_t i = 0; i < std::size(hostile); ++i) {
    Status status = LoadContent(hostile[i], "adarts_bundle_hostile.model");
    ASSERT_FALSE(status.ok()) << "variant " << i;
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << "variant " << i;
  }
}

TEST(SerializationTest, TruncationSweepAtEveryTokenBoundary) {
  auto engine = TrainSmallEngine(72);
  ASSERT_TRUE(engine.ok());
  const std::string path = TempBundlePath("adarts_bundle_truncate.model");
  ASSERT_TRUE(engine->Save(path).ok());
  const std::string good = ReadAll(path);
  std::remove(path.c_str());
  ASSERT_FALSE(good.empty());

  // Truncate the bundle at every whitespace (token) boundary: each prefix
  // is what a crash mid-write could have left behind in a world without the
  // atomic publish. The versioned header declares the exact payload length,
  // so EVERY strict prefix — including the one that merely strips the final
  // newline — is a torn snapshot and must be rejected.
  std::size_t boundaries = 0;
  for (std::size_t i = 0; i < good.size(); ++i) {
    if (good[i] != ' ' && good[i] != '\n') continue;
    ++boundaries;
    Status status =
        LoadContent(good.substr(0, i), "adarts_bundle_truncate.model");
    EXPECT_FALSE(status.ok()) << "prefix of " << i << " bytes loaded";
  }
  EXPECT_GT(boundaries, 100u);  // the sweep really covered the bundle
}

// --- versioned snapshot header (DESIGN.md §12) ----------------------------

TEST(SerializationTest, VersionedHeaderRoundTrip) {
  auto engine = TrainSmallEngine(81);
  ASSERT_TRUE(engine.ok());
  engine->set_engine_version(42);
  const std::string path = TempBundlePath("adarts_bundle_header.model");
  ASSERT_TRUE(engine->Save(path).ok());

  auto header = ReadSnapshotHeader(path);
  ASSERT_TRUE(header.ok()) << header.status();
  EXPECT_EQ(header->format_version, 2u);
  EXPECT_EQ(header->engine_version, 42u);
  EXPECT_GT(header->created_unix, 0u);
  EXPECT_GT(header->payload_bytes, 0u);
  // The checksum is a real FNV-1a over exactly the payload bytes.
  const std::string bundle = ReadAll(path);
  const std::string payload = PayloadOf(bundle);
  ASSERT_EQ(payload.size(), header->payload_bytes);
  EXPECT_EQ(Fnv1a64(payload), header->checksum);

  auto loaded = Adarts::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->engine_version(), 42u);
  EXPECT_EQ(loaded->snapshot_created_unix(), header->created_unix);
  std::remove(path.c_str());
}

TEST(SerializationTest, ChecksumCatchesAnySingleFlippedPayloadByte) {
  auto engine = TrainSmallEngine(82);
  ASSERT_TRUE(engine.ok());
  const std::string path = TempBundlePath("adarts_bundle_flip.model");
  ASSERT_TRUE(engine->Save(path).ok());
  const std::string good = ReadAll(path);
  std::remove(path.c_str());
  const std::size_t payload_start = good.size() - PayloadOf(good).size();

  // Flip one byte at a stride across the whole payload (and the very first
  // and last payload bytes explicitly): the checksum must catch every one
  // BEFORE the parser ever sees the corrupted text.
  std::vector<std::size_t> offsets = {payload_start, good.size() - 1};
  for (std::size_t off = payload_start + 37; off < good.size(); off += 97) {
    offsets.push_back(off);
  }
  for (std::size_t off : offsets) {
    std::string corrupted = good;
    corrupted[off] ^= 0x01;
    Status status = LoadContent(corrupted, "adarts_bundle_flip.model");
    ASSERT_FALSE(status.ok()) << "flip at byte " << off << " loaded";
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(status.message().find("checksum mismatch"), std::string::npos)
        << "flip at byte " << off << " rejected for the wrong reason: "
        << status.message();
  }
}

TEST(SerializationTest, FormatVersionSkewIsRejectedWithDirection) {
  auto engine = TrainSmallEngine(83);
  ASSERT_TRUE(engine.ok());
  const std::string path = TempBundlePath("adarts_bundle_skew.model");
  ASSERT_TRUE(engine->Save(path).ok());
  const std::string good = ReadAll(path);
  std::remove(path.c_str());

  // A snapshot from a future build must name the skew direction…
  Status newer = LoadContent(ReplaceFirst(good, "\nheader 2 ", "\nheader 9 "),
                             "adarts_bundle_skew.model");
  ASSERT_FALSE(newer.ok());
  EXPECT_NE(newer.message().find("newer than this build understands"),
            std::string::npos)
      << newer.message();

  // …as must one from before the versioned format.
  Status older = LoadContent(ReplaceFirst(good, "\nheader 2 ", "\nheader 1 "),
                             "adarts_bundle_skew.model");
  ASSERT_FALSE(older.ok());
  EXPECT_NE(older.message().find("older than this build supports"),
            std::string::npos)
      << older.message();

  // The pre-versioning V1 magic gets its own actionable rejection.
  Status v1 = LoadContent("ADARTS_MODEL_V1\nextractor 1 1 3 0 24\n",
                          "adarts_bundle_skew.model");
  ASSERT_FALSE(v1.ok());
  EXPECT_NE(v1.message().find("V1 snapshot no longer supported"),
            std::string::npos)
      << v1.message();
}

}  // namespace
}  // namespace adarts
