// End-to-end tests of the serving daemon's front end (DESIGN.md §10): the
// request loop against a live engine, deterministic load shedding, queued
// deadline expiry, graceful drain with zero lost in-flight replies, and
// the folded metrics export.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "adarts/adarts.h"
#include "data/generators.h"
#include "net/server.h"
#include "tests/test_util.h"

namespace adarts {
namespace {

TrainOptions FastOptions() {
  TrainOptions opts;
  opts.labeling.algorithms = {
      impute::Algorithm::kCdRec, impute::Algorithm::kSvdImpute,
      impute::Algorithm::kTkcm, impute::Algorithm::kLinearInterp,
      impute::Algorithm::kMeanImpute};
  opts.race.num_seed_pipelines = 12;
  opts.race.num_partial_sets = 2;
  opts.race.num_folds = 2;
  opts.features.landmarks = 16;
  return opts;
}

std::vector<ts::TimeSeries> SmallCorpus() {
  data::GeneratorOptions gopts;
  gopts.num_series = 12;
  gopts.length = 160;
  std::vector<ts::TimeSeries> corpus;
  for (data::Category c : {data::Category::kClimate, data::Category::kMotion}) {
    for (auto& s : data::GenerateCategory(c, gopts)) {
      corpus.push_back(std::move(s));
    }
  }
  return corpus;
}

/// One engine for the whole binary — training dominates the suite's runtime
/// and every test only needs a read-only engine (which is the serving
/// contract anyway: the daemon never mutates it).
const Adarts& Engine() {
  static const Adarts* engine = [] {
    auto trained = Adarts::Train(SmallCorpus(), FastOptions());
    EXPECT_TRUE(trained.ok()) << trained.status();
    return new Adarts(std::move(trained).value());
  }();
  return *engine;
}

ts::TimeSeries MakeFaulty(std::uint64_t seed = 9) {
  ts::TimeSeries series = testing::MakeSine(160, 24.0, 0.05, seed);
  for (std::size_t i = 40; i < 52; ++i) {
    series.SetMissing(i, true);
  }
  return series;
}

net::Request MakeRequest(net::MessageType type, std::uint64_t id,
                         double deadline_ms = 0.0) {
  net::Request request;
  request.type = type;
  request.id = id;
  request.deadline_ms = deadline_ms;
  if (type == net::MessageType::kRecommendBatch) {
    request.series.push_back(MakeFaulty(1));
    request.series.push_back(MakeFaulty(2));
    request.series.push_back(MakeFaulty(3));
  } else if (type != net::MessageType::kPing) {
    request.series.push_back(MakeFaulty());
  }
  return request;
}

/// Connects, sends one request, reads one response.
Result<net::Response> Call(std::uint16_t port, const net::Request& request) {
  ADARTS_ASSIGN_OR_RETURN(net::Socket sock,
                          net::ConnectTcp("127.0.0.1", port));
  ADARTS_RETURN_NOT_OK(net::WriteFrame(sock, net::EncodeRequest(request)));
  ADARTS_ASSIGN_OR_RETURN(std::string frame, net::ReadFrame(sock));
  return net::DecodeResponse(frame);
}

void Shutdown(net::Server* server) {
  server->RequestShutdown();
  Status drained = server->Wait();
  EXPECT_TRUE(drained.ok()) << drained;
}

TEST(ServeTest, PingRoundTrips) {
  net::Server server(Engine(), {});
  ASSERT_TRUE(server.Start().ok());
  auto response = Call(server.port(), MakeRequest(net::MessageType::kPing, 7));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->ok()) << response->message;
  EXPECT_EQ(response->id, 7u);
  EXPECT_EQ(response->type, net::MessageType::kPing);
  Shutdown(&server);
}

TEST(ServeTest, RecommendReturnsAlgorithmFromPool) {
  net::Server server(Engine(), {});
  ASSERT_TRUE(server.Start().ok());
  auto response =
      Call(server.port(), MakeRequest(net::MessageType::kRecommend, 1));
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_TRUE(response->ok()) << response->message;
  ASSERT_EQ(response->algorithms.size(), 1u);
  auto algorithm = impute::AlgorithmFromString(response->algorithms[0]);
  ASSERT_TRUE(algorithm.ok());
  bool in_pool = false;
  for (impute::Algorithm a : Engine().algorithm_pool()) {
    in_pool = in_pool || a == *algorithm;
  }
  EXPECT_TRUE(in_pool);
  // The served answer equals a direct engine call — the wire adds nothing.
  auto direct = Engine().Recommend(MakeFaulty());
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(*algorithm, *direct);
  Shutdown(&server);
}

TEST(ServeTest, BatchMatchesSingleRecommends) {
  net::Server server(Engine(), {});
  ASSERT_TRUE(server.Start().ok());
  const net::Request request =
      MakeRequest(net::MessageType::kRecommendBatch, 2);
  auto response = Call(server.port(), request);
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_TRUE(response->ok()) << response->message;
  ASSERT_EQ(response->algorithms.size(), request.series.size());
  for (std::size_t i = 0; i < request.series.size(); ++i) {
    auto direct = Engine().Recommend(request.series[i]);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(response->algorithms[i],
              std::string(impute::AlgorithmToString(*direct)));
  }
  Shutdown(&server);
}

TEST(ServeTest, RepairFillsEveryMissingPosition) {
  net::Server server(Engine(), {});
  ASSERT_TRUE(server.Start().ok());
  auto response =
      Call(server.port(), MakeRequest(net::MessageType::kRepair, 3));
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_TRUE(response->ok()) << response->message;
  ASSERT_EQ(response->series.size(), 1u);
  const ts::TimeSeries& repaired = response->series[0];
  ASSERT_EQ(repaired.length(), MakeFaulty().length());
  for (std::size_t i = 0; i < repaired.length(); ++i) {
    EXPECT_FALSE(repaired.IsMissing(i)) << "position " << i << " still missing";
  }
  Shutdown(&server);
}

TEST(ServeTest, MalformedBodyGetsErrorResponse) {
  net::Server server(Engine(), {});
  ASSERT_TRUE(server.Start().ok());
  auto sock = net::ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(sock.ok());
  ASSERT_TRUE(net::WriteFrame(*sock, "garbage-bytes").ok());
  auto frame = net::ReadFrame(*sock);
  ASSERT_TRUE(frame.ok()) << frame.status();
  auto response = net::DecodeResponse(*frame);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->code, StatusCode::kInvalidArgument);
  // The server drops the connection after a malformed body.
  EXPECT_FALSE(net::ReadFrame(*sock).ok());
  Shutdown(&server);
}

TEST(ServeTest, ShedsWithUnavailableWhenQueueIsFull) {
  std::promise<void> started;
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();
  std::atomic<int> hooked{0};
  net::ServeOptions options;
  options.queue_capacity = 1;
  options.num_workers = 1;
  options.worker_hook_for_test = [&](const net::Request&) {
    // Block only the FIRST executed request, so the drain after the
    // assertions cannot wedge on a second hook hit.
    if (hooked.fetch_add(1) == 0) {
      started.set_value();
      release_future.wait();
    }
  };
  net::Server server(Engine(), options);
  ASSERT_TRUE(server.Start().ok());

  auto sock = net::ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(sock.ok());
  // Request 1 occupies the single worker (the hook holds it mid-request)…
  ASSERT_TRUE(
      net::WriteFrame(*sock, net::EncodeRequest(
                                 MakeRequest(net::MessageType::kPing, 1)))
          .ok());
  started.get_future().wait();
  // …request 2 fills the queue, request 3 must shed deterministically.
  ASSERT_TRUE(
      net::WriteFrame(*sock, net::EncodeRequest(
                                 MakeRequest(net::MessageType::kPing, 2)))
          .ok());
  ASSERT_TRUE(
      net::WriteFrame(*sock, net::EncodeRequest(
                                 MakeRequest(net::MessageType::kPing, 3)))
          .ok());

  // The shed reply for 3 arrives first (written by the reader thread while
  // the worker is still held).
  auto shed_frame = net::ReadFrame(*sock);
  ASSERT_TRUE(shed_frame.ok()) << shed_frame.status();
  auto shed = net::DecodeResponse(*shed_frame);
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ(shed->id, 3u);
  EXPECT_EQ(shed->code, StatusCode::kUnavailable);

  release.set_value();
  for (std::uint64_t expected : {1u, 2u}) {
    auto frame = net::ReadFrame(*sock);
    ASSERT_TRUE(frame.ok()) << frame.status();
    auto response = net::DecodeResponse(*frame);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->id, expected);
    EXPECT_TRUE(response->ok());
  }
  Shutdown(&server);
  EXPECT_EQ(server.stats().requests_shed, 1u);
  EXPECT_EQ(server.stats().requests_ok, 2u);
}

TEST(ServeTest, DeadlineExpiredInQueueAnswersDeadlineExceeded) {
  net::Server server(Engine(), {});
  ASSERT_TRUE(server.Start().ok());
  // A 1-nanosecond budget is always expired by the time a worker pops the
  // request; the engine must never run.
  auto response = Call(
      server.port(),
      MakeRequest(net::MessageType::kRecommend, 4, /*deadline_ms=*/1e-6));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->code, StatusCode::kDeadlineExceeded);
  Shutdown(&server);
  EXPECT_EQ(server.stats().requests_deadline_exceeded, 1u);
}

TEST(ServeTest, DrainAnswersEveryAdmittedRequest) {
  std::promise<void> started;
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();
  std::atomic<int> hooked{0};
  net::ServeOptions options;
  options.queue_capacity = 8;
  options.num_workers = 1;
  options.worker_hook_for_test = [&](const net::Request&) {
    if (hooked.fetch_add(1) == 0) {
      started.set_value();
      release_future.wait();
    }
  };
  net::Server server(Engine(), options);
  ASSERT_TRUE(server.Start().ok());

  auto sock = net::ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(sock.ok());
  constexpr std::uint64_t kRequests = 4;
  ASSERT_TRUE(
      net::WriteFrame(*sock, net::EncodeRequest(
                                 MakeRequest(net::MessageType::kPing, 0)))
          .ok());
  started.get_future().wait();
  for (std::uint64_t id = 1; id < kRequests; ++id) {
    ASSERT_TRUE(
        net::WriteFrame(*sock, net::EncodeRequest(
                                   MakeRequest(net::MessageType::kPing, id)))
            .ok());
  }

  // Begin the drain while one request executes and three sit in the queue;
  // then let the worker go. Every admitted request must still be answered.
  server.RequestShutdown();
  std::thread waiter([&server] { EXPECT_TRUE(server.Wait().ok()); });
  release.set_value();
  std::vector<bool> answered(kRequests, false);
  for (std::uint64_t n = 0; n < kRequests; ++n) {
    auto frame = net::ReadFrame(*sock);
    ASSERT_TRUE(frame.ok()) << frame.status();
    auto response = net::DecodeResponse(*frame);
    ASSERT_TRUE(response.ok());
    ASSERT_LT(response->id, kRequests);
    EXPECT_TRUE(response->ok());
    answered[response->id] = true;
  }
  waiter.join();
  for (std::uint64_t id = 0; id < kRequests; ++id) {
    EXPECT_TRUE(answered[id]) << "request " << id << " lost in drain";
  }
  const net::ServeStats stats = server.stats();
  EXPECT_EQ(stats.requests_ok, kRequests);
  EXPECT_EQ(stats.responses_sent, kRequests);
  EXPECT_GE(stats.drained_in_flight, 1u);
}

TEST(ServeTest, MetricsSnapshotFoldsServeAndEngineMetrics) {
  net::Server server(Engine(), {});
  ASSERT_TRUE(server.Start().ok());
  for (std::uint64_t id = 0; id < 3; ++id) {
    auto response =
        Call(server.port(), MakeRequest(net::MessageType::kRecommend, id));
    ASSERT_TRUE(response.ok());
    ASSERT_TRUE(response->ok()) << response->message;
  }
  Shutdown(&server);
  const StageMetrics snapshot = server.MetricsSnapshot();
  // Serve-level instrumentation…
  EXPECT_EQ(snapshot.Counter("serve.requests"), 3u);
  EXPECT_EQ(snapshot.Counter("serve.ok"), 3u);
  EXPECT_EQ(snapshot.Histogram("serve.queue_wait").count, 3u);
  // …folded with the worker ExecContext's engine metrics.
  EXPECT_EQ(snapshot.Counter("recommend.requests"), 3u);
  EXPECT_EQ(snapshot.Histogram("recommend.latency").count, 3u);
}

// --- hot-swap and connection-cap behaviour (DESIGN.md §12) ----------------

std::string TempSnapshotPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// Saves a snapshot of the shared test engine stamped with `version`.
/// Adarts is move-only (the committee owns fitted classifiers), so the
/// stamped copy is made via a save/load round trip.
std::string SaveEngineWithVersion(std::uint64_t version, const char* name) {
  const std::string path = TempSnapshotPath(name);
  EXPECT_TRUE(Engine().Save(path).ok());
  auto copy = Adarts::Load(path);
  EXPECT_TRUE(copy.ok()) << copy.status();
  copy->set_engine_version(version);
  EXPECT_TRUE(copy->Save(path).ok());
  return path;
}

/// Sends a kReload frame and waits for the pipeline's verdict.
Result<net::Response> ReloadViaFrame(std::uint16_t port,
                                     const std::string& path,
                                     std::uint64_t id) {
  net::Request request;
  request.type = net::MessageType::kReload;
  request.id = id;
  request.text = path;
  return Call(port, request);
}

TEST(ServeTest, ReloadDuringBurstPartitionsRepliesAcrossExactlyTwoVersions) {
  const std::string v2_path =
      SaveEngineWithVersion(2, "adarts_serve_swap_v2.model");
  net::ServeOptions options;
  options.num_workers = 2;
  net::Server server(Engine(), options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_EQ(server.registry().ActiveVersion(), 1u);

  auto sock = net::ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(sock.ok());
  constexpr std::uint64_t kBurst = 20;
  // First half of the burst races the swap…
  for (std::uint64_t id = 0; id < kBurst; ++id) {
    ASSERT_TRUE(
        net::WriteFrame(*sock, net::EncodeRequest(
                                   MakeRequest(net::MessageType::kPing, id)))
            .ok());
  }
  // …the reload reply only arrives after the registry published v2…
  auto reload = ReloadViaFrame(server.port(), v2_path, 777);
  ASSERT_TRUE(reload.ok()) << reload.status();
  ASSERT_TRUE(reload->ok()) << reload->message;
  EXPECT_EQ(reload->engine_version, 2u);
  // …so the second half must be served by v2 exclusively.
  for (std::uint64_t id = kBurst; id < 2 * kBurst; ++id) {
    ASSERT_TRUE(
        net::WriteFrame(*sock, net::EncodeRequest(
                                   MakeRequest(net::MessageType::kPing, id)))
            .ok());
  }

  std::set<std::uint64_t> versions;
  std::vector<bool> answered(2 * kBurst, false);
  for (std::uint64_t n = 0; n < 2 * kBurst; ++n) {
    auto frame = net::ReadFrame(*sock);
    ASSERT_TRUE(frame.ok()) << frame.status();
    auto response = net::DecodeResponse(*frame);
    ASSERT_TRUE(response.ok());
    ASSERT_TRUE(response->ok()) << response->message;
    ASSERT_LT(response->id, 2 * kBurst);
    answered[response->id] = true;
    versions.insert(response->engine_version);
    if (response->id >= kBurst) {
      EXPECT_EQ(response->engine_version, 2u)
          << "request " << response->id << " sent after the swap was "
          << "answered by the old engine";
    }
  }
  // Parity: no burst request lost across the swap; every reply names
  // exactly one of the two published versions.
  for (std::uint64_t id = 0; id < 2 * kBurst; ++id) {
    EXPECT_TRUE(answered[id]) << "request " << id << " lost across the swap";
  }
  for (std::uint64_t v : versions) {
    EXPECT_TRUE(v == 1u || v == 2u) << "unpublished version " << v;
  }
  EXPECT_LE(versions.size(), 2u);
  EXPECT_EQ(versions.count(2u), 1u);
  Shutdown(&server);
  EXPECT_EQ(server.stats().reloads_ok, 1u);
  std::remove(v2_path.c_str());
}

TEST(ServeTest, CorruptSnapshotReloadLeavesOldEngineServing) {
  const std::string path =
      SaveEngineWithVersion(5, "adarts_serve_corrupt.model");
  // Flip one payload byte: the reload must die on the checksum, not parse.
  {
    std::fstream file(path,
                      std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.good());
    file.seekg(0, std::ios::end);
    const std::streampos size = file.tellg();
    file.seekp(static_cast<std::streamoff>(size) / 2);
    char byte = 0;
    file.seekg(static_cast<std::streamoff>(size) / 2);
    file.read(&byte, 1);
    byte ^= 0x01;
    file.seekp(static_cast<std::streamoff>(size) / 2);
    file.write(&byte, 1);
  }

  net::Server server(Engine(), {});
  ASSERT_TRUE(server.Start().ok());
  auto reload = ReloadViaFrame(server.port(), path, 88);
  ASSERT_TRUE(reload.ok()) << reload.status();
  EXPECT_FALSE(reload->ok());
  EXPECT_EQ(reload->code, StatusCode::kInvalidArgument);
  EXPECT_NE(reload->message.find("checksum mismatch"), std::string::npos)
      << reload->message;
  // The failed reload reply itself names the version still serving…
  EXPECT_EQ(reload->engine_version, 1u);
  EXPECT_EQ(server.registry().ActiveVersion(), 1u);
  // …and the old engine keeps answering real requests.
  auto response =
      Call(server.port(), MakeRequest(net::MessageType::kRecommend, 89));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->ok()) << response->message;
  EXPECT_EQ(response->engine_version, 1u);
  Shutdown(&server);
  EXPECT_EQ(server.stats().reloads_failed, 1u);
  EXPECT_EQ(server.stats().reloads_ok, 0u);
  std::remove(path.c_str());
}

TEST(ServeTest, ConnectionCapRefusesWithExplicitUnavailable) {
  net::ServeOptions options;
  options.max_connections = 2;
  net::Server server(Engine(), options);
  ASSERT_TRUE(server.Start().ok());

  // Fill the table with two held connections (ping round trip proves each
  // is fully admitted, not just in the accept backlog).
  std::vector<net::Socket> held;
  for (std::uint64_t id = 0; id < 2; ++id) {
    auto sock = net::ConnectTcp("127.0.0.1", server.port());
    ASSERT_TRUE(sock.ok());
    ASSERT_TRUE(
        net::WriteFrame(*sock, net::EncodeRequest(
                                   MakeRequest(net::MessageType::kPing, id)))
            .ok());
    auto frame = net::ReadFrame(*sock);
    ASSERT_TRUE(frame.ok()) << frame.status();
    held.push_back(std::move(sock).value());
  }

  // The third connection is accepted, told kUnavailable, and closed —
  // an explicit refusal the client can back off on, not a silent drop.
  auto refused = net::ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(refused.ok());
  auto frame = net::ReadFrame(*refused);
  ASSERT_TRUE(frame.ok()) << frame.status();
  auto response = net::DecodeResponse(*frame);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->code, StatusCode::kUnavailable);
  EXPECT_FALSE(net::ReadFrame(*refused).ok());  // server closed it

  // Releasing one slot lets a new connection in (poll until the reader
  // unregisters the closed connection).
  held.pop_back();
  bool admitted = false;
  for (int attempt = 0; attempt < 100 && !admitted; ++attempt) {
    auto response2 = Call(server.port(),
                          MakeRequest(net::MessageType::kPing, 50));
    admitted = response2.ok() && response2->ok();
    if (!admitted) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  EXPECT_TRUE(admitted) << "slot never freed after closing a connection";
  held.clear();
  Shutdown(&server);
  EXPECT_GE(server.stats().connections_refused, 1u);
}

TEST(ServeTest, StatsCountConnectionsAndRequests) {
  net::Server server(Engine(), {});
  ASSERT_TRUE(server.Start().ok());
  for (std::uint64_t id = 0; id < 2; ++id) {
    auto response =
        Call(server.port(), MakeRequest(net::MessageType::kPing, id));
    ASSERT_TRUE(response.ok());
  }
  Shutdown(&server);
  const net::ServeStats stats = server.stats();
  EXPECT_EQ(stats.connections_accepted, 2u);
  EXPECT_EQ(stats.requests_received, 2u);
  EXPECT_EQ(stats.requests_ok, 2u);
  EXPECT_EQ(stats.responses_sent, 2u);
}

}  // namespace
}  // namespace adarts
