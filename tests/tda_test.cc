#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "tda/delay_embedding.h"
#include "tda/diagram_stats.h"
#include "tda/persistence.h"
#include "tests/test_util.h"

namespace adarts::tda {
namespace {

PointCloud CirclePoints(std::size_t n, double radius = 1.0) {
  PointCloud cloud;
  for (std::size_t i = 0; i < n; ++i) {
    const double angle =
        2.0 * std::numbers::pi * static_cast<double>(i) / static_cast<double>(n);
    cloud.push_back({radius * std::cos(angle), radius * std::sin(angle)});
  }
  return cloud;
}

TEST(DelayEmbeddingTest, ProducesExpectedVectors) {
  const la::Vector signal = {0, 1, 2, 3, 4, 5};
  auto cloud = DelayEmbed(signal, 3, 1);
  ASSERT_TRUE(cloud.ok());
  ASSERT_EQ(cloud->size(), 4u);
  EXPECT_EQ((*cloud)[0], (la::Vector{0, 1, 2}));
  EXPECT_EQ((*cloud)[3], (la::Vector{3, 4, 5}));
}

TEST(DelayEmbeddingTest, RespectsTau) {
  const la::Vector signal = {0, 1, 2, 3, 4, 5, 6};
  auto cloud = DelayEmbed(signal, 2, 3);
  ASSERT_TRUE(cloud.ok());
  ASSERT_EQ(cloud->size(), 4u);
  EXPECT_EQ((*cloud)[0], (la::Vector{0, 3}));
}

TEST(DelayEmbeddingTest, RejectsTooShortSeries) {
  EXPECT_FALSE(DelayEmbed({1.0, 2.0}, 3, 1).ok());
  EXPECT_FALSE(DelayEmbed({1.0, 2.0, 3.0}, 2, 0).ok());
}

TEST(DelayEmbeddingTest, PeriodicSignalEmbedsToLoop) {
  // A sine embeds to a closed curve: first and period-th points coincide.
  const la::Vector sine = adarts::testing::MakeSine(64, 16.0).values();
  auto cloud = DelayEmbed(sine, 2, 4);
  ASSERT_TRUE(cloud.ok());
  EXPECT_NEAR(EuclideanDistance((*cloud)[0], (*cloud)[16]), 0.0, 1e-9);
}

TEST(MaxMinLandmarksTest, ReducesToRequestedCount) {
  const PointCloud circle = CirclePoints(100);
  const PointCloud landmarks = MaxMinLandmarks(circle, 10);
  EXPECT_EQ(landmarks.size(), 10u);
}

TEST(MaxMinLandmarksTest, SpreadsPoints) {
  // Landmarks on a circle should be near-uniformly spread: the min pairwise
  // distance should be a decent fraction of the uniform spacing.
  const PointCloud circle = CirclePoints(200);
  const PointCloud landmarks = MaxMinLandmarks(circle, 8);
  double min_dist = 1e300;
  for (std::size_t i = 0; i < landmarks.size(); ++i) {
    for (std::size_t j = i + 1; j < landmarks.size(); ++j) {
      min_dist = std::min(min_dist, EuclideanDistance(landmarks[i], landmarks[j]));
    }
  }
  const double uniform_spacing = 2.0 * std::sin(std::numbers::pi / 8.0);
  EXPECT_GT(min_dist, 0.5 * uniform_spacing);
}

TEST(MaxMinLandmarksTest, NoOpWhenSmallEnough) {
  const PointCloud pts = CirclePoints(5);
  EXPECT_EQ(MaxMinLandmarks(pts, 10).size(), 5u);
}

TEST(PersistenceTest, H0CountsComponents) {
  // Two well-separated pairs of points: 4 points, H0 pairs = 3 finite
  // deaths + 1 essential.
  PointCloud cloud = {{0, 0}, {0.1, 0}, {10, 0}, {10.1, 0}};
  auto diagram = ComputeRipsPersistence(cloud);
  ASSERT_TRUE(diagram.ok());
  const auto h0 = diagram->Dimension(0);
  ASSERT_EQ(h0.size(), 4u);
  // Two short-lived merges (within pairs) and one long-lived (across).
  int long_lived = 0;
  for (const auto& p : h0) {
    if (p.death > 5.0) ++long_lived;
  }
  EXPECT_EQ(long_lived, 2);  // the cross-pair merge and the essential class
}

TEST(PersistenceTest, CircleHasOneProminentLoop) {
  const PointCloud circle = CirclePoints(24);
  auto diagram = ComputeRipsPersistence(circle);
  ASSERT_TRUE(diagram.ok());
  const auto h1 = diagram->Dimension(1);
  ASSERT_FALSE(h1.empty());
  // Exactly one loop should dominate: its lifetime far exceeds the rest.
  double best = 0.0, second = 0.0;
  for (const auto& p : h1) {
    const double l = p.Lifetime();
    if (l > best) {
      second = best;
      best = l;
    } else if (l > second) {
      second = l;
    }
  }
  EXPECT_GT(best, 0.5);
  EXPECT_GT(best, 4.0 * second + 1e-12);
}

TEST(PersistenceTest, LineSegmentHasNoLoop) {
  PointCloud line;
  for (int i = 0; i < 20; ++i) {
    line.push_back({0.1 * static_cast<double>(i), 0.0});
  }
  auto diagram = ComputeRipsPersistence(line);
  ASSERT_TRUE(diagram.ok());
  for (const auto& p : diagram->Dimension(1)) {
    EXPECT_LT(p.Lifetime(), 0.3);  // only numerical noise allowed
  }
}

TEST(PersistenceTest, MinRelativePersistenceFilters) {
  const PointCloud circle = CirclePoints(24);
  RipsOptions opts;
  opts.min_relative_persistence = 0.15;
  auto diagram = ComputeRipsPersistence(circle, opts);
  ASSERT_TRUE(diagram.ok());
  for (const auto& p : diagram->pairs) {
    EXPECT_GE(p.Lifetime(), 0.15 * diagram->max_filtration - 1e-12);
  }
}

TEST(PersistenceTest, RejectsDegenerateInput) {
  EXPECT_FALSE(ComputeRipsPersistence({{1.0, 2.0}}).ok());
  RipsOptions opts;
  opts.max_dimension = 2;
  EXPECT_FALSE(ComputeRipsPersistence(CirclePoints(5), opts).ok());
}

TEST(DiagramStatsTest, ComputedFromKnownPairs) {
  PersistenceDiagram diagram;
  diagram.pairs = {{1, 0.0, 2.0}, {1, 1.0, 2.0}, {0, 0.0, 1.0}};
  diagram.max_filtration = 2.0;
  const DiagramStats h1 = ComputeDiagramStats(diagram, 1);
  EXPECT_DOUBLE_EQ(h1.count, 2.0);
  EXPECT_DOUBLE_EQ(h1.total_persistence, 3.0);
  EXPECT_DOUBLE_EQ(h1.max_persistence, 2.0);
  EXPECT_DOUBLE_EQ(h1.mean_persistence, 1.5);
  EXPECT_DOUBLE_EQ(h1.mean_birth, 0.5);
  EXPECT_DOUBLE_EQ(h1.mean_death, 2.0);
  EXPECT_GT(h1.persistence_entropy, 0.0);
  EXPECT_LE(h1.persistence_entropy, 1.0);
}

TEST(DiagramStatsTest, EmptyDimensionGivesZeros) {
  PersistenceDiagram diagram;
  diagram.pairs = {{0, 0.0, 1.0}};
  const DiagramStats h1 = ComputeDiagramStats(diagram, 1);
  EXPECT_DOUBLE_EQ(h1.count, 0.0);
  EXPECT_DOUBLE_EQ(h1.total_persistence, 0.0);
}

TEST(DiagramStatsTest, VectorHasFixedLayout) {
  const DiagramStats stats{};
  EXPECT_EQ(DiagramStatsToVector(stats).size(), 8u);
}

TEST(PersistenceIntegrationTest, PeriodicSeriesShowsLoopNoiseDoesNot) {
  // The end-to-end topological claim of Section V-B: a periodic series'
  // delay embedding contains a prominent loop; white noise does not.
  const la::Vector sine = adarts::testing::MakeSine(96, 24.0).values();
  auto sine_cloud = DelayEmbed(sine, 2, 6);
  ASSERT_TRUE(sine_cloud.ok());
  auto sine_diagram =
      ComputeRipsPersistence(MaxMinLandmarks(*sine_cloud, 20));
  ASSERT_TRUE(sine_diagram.ok());
  const DiagramStats sine_h1 = ComputeDiagramStats(*sine_diagram, 1);

  Rng rng(99);
  la::Vector noise(96);
  for (double& x : noise) x = rng.Normal(0, 1);
  auto noise_cloud = DelayEmbed(noise, 2, 6);
  ASSERT_TRUE(noise_cloud.ok());
  auto noise_diagram =
      ComputeRipsPersistence(MaxMinLandmarks(*noise_cloud, 20));
  ASSERT_TRUE(noise_diagram.ok());
  const DiagramStats noise_h1 = ComputeDiagramStats(*noise_diagram, 1);

  EXPECT_GT(sine_h1.max_persistence, 2.0 * noise_h1.max_persistence);
}

}  // namespace
}  // namespace adarts::tda
