// Tests of the live telemetry plane (DESIGN.md §14): sliding-window
// histogram rotation and percentiles, live Metrics folds under concurrent
// recorders (counts must never regress between successive scrapes), the
// kStats frame end-to-end against a live server, and the hardened HTTP
// sidecar. Suite names deliberately contain Histogram / Metrics / Serve /
// Net so CI's tsan-parallel job picks them up.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "adarts/adarts.h"
#include "common/histogram.h"
#include "common/json.h"
#include "common/metrics.h"
#include "common/sliding_histogram.h"
#include "data/generators.h"
#include "net/http_endpoint.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/socket.h"
#include "tests/test_util.h"

namespace adarts {
namespace {

// --- sliding window ------------------------------------------------------

constexpr std::uint64_t kSecond = 1'000'000'000ull;

TEST(SlidingHistogramTest, EmptySnapshot) {
  SlidingHistogram window(4, kSecond);
  const WindowedSnapshot snap = window.SnapshotAt(10 * kSecond);
  EXPECT_EQ(snap.histogram.count, 0u);
  EXPECT_DOUBLE_EQ(snap.window_seconds, 4.0);
  // Nothing was ever recorded: zero honest coverage, not "a full window".
  EXPECT_DOUBLE_EQ(snap.covered_seconds, 0.0);
}

TEST(SlidingHistogramTest, RecordsAndReportsPercentiles) {
  SlidingHistogram window(4, kSecond);
  for (std::uint64_t v = 1; v <= 100; ++v) {
    window.RecordAt(v * 1000, 0);
  }
  const WindowedSnapshot snap = window.SnapshotAt(0);
  EXPECT_EQ(snap.histogram.count, 100u);
  EXPECT_GT(snap.histogram.p50_ns, 0u);
  EXPECT_GE(snap.histogram.p99_ns, snap.histogram.p50_ns);
  // Percentiles are bucket upper bounds, so p99 may slightly exceed the
  // exact max; it can never undercut the true p99 value.
  EXPECT_GE(snap.histogram.p99_ns, 99'000u);
  EXPECT_EQ(snap.histogram.max_ns, 100'000u);
}

TEST(SlidingHistogramTest, SamplesExpireAfterTheWindow) {
  SlidingHistogram window(4, kSecond);
  window.RecordAt(5000, 0);
  EXPECT_EQ(window.SnapshotAt(0).histogram.count, 1u);
  // Still inside the 4-bucket window at t=3s...
  EXPECT_EQ(window.SnapshotAt(3 * kSecond).histogram.count, 1u);
  // ...gone at t=4s, even with no recordings in between (the snapshot
  // itself rotates idle buckets out).
  EXPECT_EQ(window.SnapshotAt(4 * kSecond).histogram.count, 0u);
}

TEST(SlidingHistogramTest, OldAndNewCoexistInsideTheWindow) {
  SlidingHistogram window(4, kSecond);
  window.RecordAt(1000, 0);
  window.RecordAt(2000, 2 * kSecond);
  const WindowedSnapshot at3 = window.SnapshotAt(3 * kSecond);
  EXPECT_EQ(at3.histogram.count, 2u);
  // t=5s: the t=0 sample expired, the t=2s one survives.
  const WindowedSnapshot at5 = window.SnapshotAt(5 * kSecond);
  EXPECT_EQ(at5.histogram.count, 1u);
}

TEST(SlidingHistogramTest, CoverageIsHonestRightAfterStartup) {
  SlidingHistogram window(12, 5 * kSecond);  // the serving default: 60 s
  window.RecordAt(1000, 10 * kSecond);
  const WindowedSnapshot snap = window.SnapshotAt(20 * kSecond);
  EXPECT_DOUBLE_EQ(snap.window_seconds, 60.0);
  // First sample landed at t=10s into slice 2 (covering 10..15 s), so by
  // t=20s the window has genuinely observed ~10 s, not 60.
  EXPECT_LE(snap.covered_seconds, 10.0 + 1e-9);
  EXPECT_GT(snap.covered_seconds, 0.0);
}

TEST(SlidingHistogramTest, RingSlotsAreReusedAcrossManyRotations) {
  SlidingHistogram window(4, kSecond);
  for (std::uint64_t t = 0; t < 100; ++t) {
    window.RecordAt(1000, t * kSecond);
  }
  // Only the last 4 slices can survive 100 rotations through 4 slots.
  const WindowedSnapshot snap = window.SnapshotAt(99 * kSecond);
  EXPECT_EQ(snap.histogram.count, 4u);
}

TEST(SlidingHistogramThreadedTest, ConcurrentRecordersAndScrapes) {
  // TSan-targeted: recorders and scrapers race freely; the contract is "no
  // data race, snapshot never exceeds what was recorded", not bit-exact
  // counts (a racing rotation may drop an edge sample by design).
  SlidingHistogram window(8, kSecond / 100);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 20'000;
  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const WindowedSnapshot snap = window.Snapshot();
      EXPECT_LE(snap.histogram.count, kThreads * kPerThread);
    }
  });
  std::vector<std::thread> recorders;
  for (int t = 0; t < kThreads; ++t) {
    recorders.emplace_back([&window] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        window.Record(1000 + i);
      }
    });
  }
  for (std::thread& t : recorders) t.join();
  stop.store(true, std::memory_order_release);
  scraper.join();
}

TEST(HistogramResetTest, ResetClearsAndAllowsReuse) {
  LatencyHistogram histogram;
  histogram.Record(1000);
  histogram.Record(2000);
  ASSERT_EQ(histogram.Snapshot().count, 2u);
  histogram.Reset();
  const HistogramSnapshot cleared = histogram.Snapshot();
  EXPECT_EQ(cleared.count, 0u);
  EXPECT_EQ(cleared.sum_ns, 0u);
  EXPECT_EQ(cleared.max_ns, 0u);
  histogram.Record(500);
  EXPECT_EQ(histogram.Snapshot().count, 1u);
  EXPECT_EQ(histogram.Snapshot().max_ns, 500u);
}

// --- live Metrics folds --------------------------------------------------

TEST(MetricsLiveFoldTest, ScrapesNeverRegressWhileRecordersRun) {
  Metrics source;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<std::thread> recorders;
  std::atomic<int> running{kThreads};
  for (int t = 0; t < kThreads; ++t) {
    recorders.emplace_back([&source, &running] {
      MetricCounter* counter = source.counter("fold.counter");
      LatencyHistogram* histogram = source.histogram("fold.latency");
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        counter->Increment();
        histogram->Record(100 + i % 1000);
      }
      running.fetch_sub(1, std::memory_order_release);
    });
  }
  // Live scrapes against the registry the recorders are writing: each fold
  // must observe a monotone prefix — a later scrape can never report fewer
  // events than an earlier one.
  std::uint64_t last_counter = 0;
  std::uint64_t last_hist_count = 0;
  while (running.load(std::memory_order_acquire) > 0) {
    Metrics folded;
    source.MergeInto(&folded);
    const StageMetrics snap = folded.Snapshot();
    const std::uint64_t counter = snap.Counter("fold.counter");
    const std::uint64_t hist_count = snap.Histogram("fold.latency").count;
    EXPECT_GE(counter, last_counter);
    EXPECT_GE(hist_count, last_hist_count);
    last_counter = counter;
    last_hist_count = hist_count;
  }
  for (std::thread& t : recorders) t.join();
  Metrics folded;
  source.MergeInto(&folded);
  const StageMetrics final_snap = folded.Snapshot();
  EXPECT_EQ(final_snap.Counter("fold.counter"), kThreads * kPerThread);
  EXPECT_EQ(final_snap.Histogram("fold.latency").count,
            kThreads * kPerThread);
}

// --- kStats end-to-end ---------------------------------------------------

TrainOptions FastOptions() {
  TrainOptions opts;
  opts.labeling.algorithms = {
      impute::Algorithm::kCdRec, impute::Algorithm::kSvdImpute,
      impute::Algorithm::kTkcm, impute::Algorithm::kLinearInterp,
      impute::Algorithm::kMeanImpute};
  opts.race.num_seed_pipelines = 12;
  opts.race.num_partial_sets = 2;
  opts.race.num_folds = 2;
  opts.features.landmarks = 16;
  return opts;
}

std::vector<ts::TimeSeries> SmallCorpus() {
  data::GeneratorOptions gopts;
  gopts.num_series = 12;
  gopts.length = 160;
  std::vector<ts::TimeSeries> corpus;
  for (data::Category c : {data::Category::kClimate, data::Category::kMotion}) {
    for (auto& s : data::GenerateCategory(c, gopts)) {
      corpus.push_back(std::move(s));
    }
  }
  return corpus;
}

const Adarts& Engine() {
  static const Adarts* engine = [] {
    auto trained = Adarts::Train(SmallCorpus(), FastOptions());
    EXPECT_TRUE(trained.ok()) << trained.status();
    return new Adarts(std::move(trained).value());
  }();
  return *engine;
}

ts::TimeSeries MakeFaulty(std::uint64_t seed = 9) {
  ts::TimeSeries series = testing::MakeSine(160, 24.0, 0.05, seed);
  for (std::size_t i = 40; i < 52; ++i) {
    series.SetMissing(i, true);
  }
  return series;
}

Result<net::Response> Call(std::uint16_t port, const net::Request& request) {
  ADARTS_ASSIGN_OR_RETURN(net::Socket sock,
                          net::ConnectTcp("127.0.0.1", port));
  ADARTS_RETURN_NOT_OK(net::WriteFrame(sock, net::EncodeRequest(request)));
  ADARTS_ASSIGN_OR_RETURN(std::string frame, net::ReadFrame(sock));
  return net::DecodeResponse(frame);
}

TEST(ServeStatsFrameTest, AnswersLiveJsonSnapshot) {
  net::Server server(Engine(), {});
  ASSERT_TRUE(server.Start().ok());

  // Drive a little traffic first so the snapshot has something to show.
  for (std::uint64_t i = 0; i < 3; ++i) {
    net::Request request;
    request.type = net::MessageType::kRecommend;
    request.id = i;
    request.series.push_back(MakeFaulty(i + 1));
    auto response = Call(server.port(), request);
    ASSERT_TRUE(response.ok()) << response.status();
    ASSERT_TRUE(response->ok()) << response->message;
  }

  net::Request scrape;
  scrape.type = net::MessageType::kStats;
  scrape.id = 77;
  auto response = Call(server.port(), scrape);
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_TRUE(response->ok()) << response->message;
  EXPECT_EQ(response->type, net::MessageType::kStats);
  EXPECT_EQ(response->id, 77u);
  ASSERT_FALSE(response->text.empty());

  auto parsed = json::ParseJson(response->text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_TRUE(parsed->is_object());
  EXPECT_EQ(parsed->NumberOr("engine_version", -1.0),
            static_cast<double>(Engine().engine_version()));
  EXPECT_GE(parsed->NumberOr("uptime_seconds", -1.0), 0.0);
  const json::JsonValue* ready = parsed->Find("ready");
  ASSERT_NE(ready, nullptr);
  EXPECT_TRUE(ready->boolean);
  const json::JsonValue* stats = parsed->Find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_GE(stats->NumberOr("requests_ok", 0.0), 3.0);
  EXPECT_GE(stats->NumberOr("stats_scrapes", 0.0), 1.0);
  // The folded registry and the windowed view both carry the traffic.
  const json::JsonValue* metrics = parsed->Find("metrics");
  ASSERT_NE(metrics, nullptr);
  const json::JsonValue* counters = metrics->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_GE(counters->NumberOr("serve.ok", 0.0), 3.0);
  const json::JsonValue* window = parsed->Find("window_latency");
  ASSERT_NE(window, nullptr);
  const json::JsonValue* histogram = window->Find("histogram");
  ASSERT_NE(histogram, nullptr);
  // The worker records window latency AFTER sending the reply (the sample
  // includes the send), so a scrape fired the instant the last reply lands
  // can legitimately see N-1 of N samples — assert presence, not the
  // exact count.
  EXPECT_GE(histogram->NumberOr("count", 0.0), 1.0);
  EXPECT_GT(histogram->NumberOr("p99_ns", 0.0), 0.0);

  server.RequestShutdown();
  EXPECT_TRUE(server.Wait().ok());
}

TEST(ServeStatsFrameTest, SuccessiveScrapesNeverRegress) {
  net::Server server(Engine(), {});
  ASSERT_TRUE(server.Start().ok());
  auto connected = net::ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(connected.ok()) << connected.status();
  net::Socket sock = std::move(connected).value();
  double last_received = 0.0;
  for (std::uint64_t i = 0; i < 5; ++i) {
    net::Request ping;
    ping.type = net::MessageType::kPing;
    ping.id = 1000 + i;
    ASSERT_TRUE(net::WriteFrame(sock, net::EncodeRequest(ping)).ok());
    auto ping_frame = net::ReadFrame(sock);
    ASSERT_TRUE(ping_frame.ok());

    net::Request scrape;
    scrape.type = net::MessageType::kStats;
    scrape.id = i;
    ASSERT_TRUE(net::WriteFrame(sock, net::EncodeRequest(scrape)).ok());
    auto frame = net::ReadFrame(sock);
    ASSERT_TRUE(frame.ok()) << frame.status();
    auto response = net::DecodeResponse(*frame);
    ASSERT_TRUE(response.ok()) << response.status();
    auto parsed = json::ParseJson(response->text);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    const json::JsonValue* stats = parsed->Find("stats");
    ASSERT_NE(stats, nullptr);
    const double received = stats->NumberOr("requests_received", -1.0);
    EXPECT_GE(received, last_received);
    last_received = received;
  }
  sock.Close();
  server.RequestShutdown();
  EXPECT_TRUE(server.Wait().ok());
}

// --- HTTP sidecar --------------------------------------------------------

/// One raw HTTP exchange: connect, write `wire` verbatim, read to EOF.
std::string RawHttp(std::uint16_t port, const std::string& wire) {
  auto sock = net::ConnectTcp("127.0.0.1", port);
  EXPECT_TRUE(sock.ok()) << sock.status();
  if (!sock.ok()) return "";
  EXPECT_TRUE(sock->WriteAll(wire.data(), wire.size()).ok());
  std::string reply;
  char buf[4096];
  for (;;) {
    auto got = sock->ReadSome(buf, sizeof(buf));
    if (!got.ok() || *got == 0) break;
    reply.append(buf, *got);
  }
  return reply;
}

TEST(NetHttpEndpointTest, ServesRegisteredPath) {
  net::HttpEndpoint http;
  http.Handle("/healthz", [] {
    net::HttpReply reply;
    reply.body = "ok\n";
    return reply;
  });
  ASSERT_TRUE(http.Start({}).ok());
  const std::string reply =
      RawHttp(http.port(), "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(reply.find("HTTP/1.1 200 OK"), std::string::npos) << reply;
  EXPECT_NE(reply.find("Connection: close"), std::string::npos);
  EXPECT_NE(reply.find("\r\n\r\nok\n"), std::string::npos);
  http.Shutdown();
}

TEST(NetHttpEndpointTest, UnknownPathIs404) {
  net::HttpEndpoint http;
  http.Handle("/metrics", [] { return net::HttpReply{}; });
  ASSERT_TRUE(http.Start({}).ok());
  const std::string reply =
      RawHttp(http.port(), "GET /nope HTTP/1.1\r\n\r\n");
  EXPECT_NE(reply.find("HTTP/1.1 404"), std::string::npos) << reply;
  http.Shutdown();
}

TEST(NetHttpEndpointTest, NonGetIs405) {
  net::HttpEndpoint http;
  http.Handle("/metrics", [] { return net::HttpReply{}; });
  ASSERT_TRUE(http.Start({}).ok());
  const std::string reply =
      RawHttp(http.port(), "POST /metrics HTTP/1.1\r\n\r\n");
  EXPECT_NE(reply.find("HTTP/1.1 405"), std::string::npos) << reply;
  http.Shutdown();
}

TEST(NetHttpEndpointTest, MalformedRequestLineIs400) {
  net::HttpEndpoint http;
  http.Handle("/metrics", [] { return net::HttpReply{}; });
  ASSERT_TRUE(http.Start({}).ok());
  const std::string reply = RawHttp(http.port(), "garbage\r\n\r\n");
  EXPECT_NE(reply.find("HTTP/1.1 400"), std::string::npos) << reply;
  http.Shutdown();
}

TEST(NetHttpEndpointTest, OversizedRequestIs400NotUnboundedBuffering) {
  net::HttpOptions options;
  options.max_request_bytes = 256;
  net::HttpEndpoint http;
  http.Handle("/metrics", [] { return net::HttpReply{}; });
  ASSERT_TRUE(http.Start(options).ok());
  // 4 KiB of request-line with no terminator: must die at the 256-byte cap
  // with a 400, never buffer unboundedly.
  const std::string hostile = "GET /" + std::string(4096, 'a');
  const std::string reply = RawHttp(http.port(), hostile);
  EXPECT_NE(reply.find("HTTP/1.1 400"), std::string::npos) << reply;
  http.Shutdown();
}

TEST(NetHttpEndpointTest, QueryStringIsIgnoredForRouting) {
  net::HttpEndpoint http;
  http.Handle("/metrics", [] {
    net::HttpReply reply;
    reply.body = "m\n";
    return reply;
  });
  ASSERT_TRUE(http.Start({}).ok());
  const std::string reply =
      RawHttp(http.port(), "GET /metrics?debug=1 HTTP/1.0\r\n\r\n");
  EXPECT_NE(reply.find("HTTP/1.1 200"), std::string::npos) << reply;
  http.Shutdown();
}

TEST(ServePrometheusTextTest, RendersValidExposition) {
  net::ServeTelemetry telemetry;
  telemetry.engine_version = 3;
  telemetry.uptime_seconds = 12.5;
  telemetry.queue_depth = 2;
  telemetry.queue_capacity = 64;
  telemetry.ready = true;
  telemetry.stats.requests_received = 100;
  telemetry.stats.requests_ok = 90;
  telemetry.metrics.counters["serve.request"] = 90;
  telemetry.metrics.spans_seconds["train.total_seconds"] = 1.25;
  HistogramSnapshot hist;
  hist.count = 90;
  hist.sum_ns = 90'000'000;
  hist.p50_ns = 1'000'000;
  hist.p90_ns = 2'000'000;
  hist.p99_ns = 3'000'000;
  telemetry.metrics.histograms["serve.queue_wait"] = hist;
  telemetry.window_latency.window_seconds = 60.0;
  telemetry.window_latency.covered_seconds = 12.5;
  telemetry.window_latency.histogram = hist;

  const std::string text = net::PrometheusText(telemetry);
  EXPECT_NE(text.find("adarts_engine_version 3\n"), std::string::npos);
  EXPECT_NE(text.find("adarts_ready 1\n"), std::string::npos);
  EXPECT_NE(text.find("adarts_serve_requests_ok_total 90\n"),
            std::string::npos);
  // Dotted registry names are sanitized into the Prometheus charset.
  EXPECT_NE(text.find("adarts_serve_request_total 90\n"), std::string::npos);
  EXPECT_NE(text.find("adarts_serve_queue_wait_seconds{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("adarts_serve_window_latency_seconds"),
            std::string::npos);
  // Every non-comment line is `name{labels} value` or `name value`; a quick
  // structural pass over the exposition text.
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    ASSERT_NE(eol, std::string::npos);  // text must end with a newline
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    EXPECT_NE(line.find(' '), std::string::npos) << line;
    EXPECT_EQ(line.find('\t'), std::string::npos) << line;
  }
}

}  // namespace
}  // namespace adarts
