#ifndef ADARTS_TESTS_TEST_UTIL_H_
#define ADARTS_TESTS_TEST_UTIL_H_

#include <cmath>
#include <cstdlib>
#include <vector>

#include "common/rng.h"
#include "la/vector_ops.h"
#include "ml/dataset.h"
#include "ts/time_series.h"

namespace adarts::testing {

/// Thread count used by the parallel determinism suites as the "many
/// threads" side of 1-vs-N comparisons. Overridable via the
/// ADARTS_TEST_THREADS environment variable (the TSan CI job sets 8 to
/// stress scheduling); defaults to `fallback`.
inline std::size_t TestThreadCount(std::size_t fallback = 4) {
  const char* env = std::getenv("ADARTS_TEST_THREADS");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(env, &end, 10);
  if (end == env || parsed == 0) return fallback;
  return static_cast<std::size_t>(parsed);
}

/// A well-separated Gaussian-blob classification dataset: class c is
/// centred at (4c, 4c, ..., 4c) with unit noise. Any sane classifier
/// reaches high accuracy here.
inline ml::Dataset MakeBlobs(int num_classes, std::size_t per_class,
                             std::size_t dim, std::uint64_t seed = 3) {
  Rng rng(seed);
  ml::Dataset data;
  data.num_classes = num_classes;
  for (int c = 0; c < num_classes; ++c) {
    for (std::size_t i = 0; i < per_class; ++i) {
      la::Vector f(dim);
      for (std::size_t j = 0; j < dim; ++j) {
        f[j] = 4.0 * static_cast<double>(c) + rng.Normal(0.0, 1.0);
      }
      data.features.push_back(std::move(f));
      data.labels.push_back(c);
    }
  }
  return data;
}

/// A sine series with optional noise.
inline ts::TimeSeries MakeSine(std::size_t length, double period,
                               double noise = 0.0, std::uint64_t seed = 5,
                               double amplitude = 1.0, double phase = 0.0) {
  Rng rng(seed);
  la::Vector v(length);
  for (std::size_t t = 0; t < length; ++t) {
    v[t] = amplitude *
               std::sin(2.0 * 3.14159265358979323846 *
                        (static_cast<double>(t) / period) + phase) +
           (noise > 0.0 ? rng.Normal(0.0, noise) : 0.0);
  }
  return ts::TimeSeries(std::move(v));
}

/// A set of correlated sine series (shared signal + per-series noise),
/// the friendly case for matrix-completion imputers.
inline std::vector<ts::TimeSeries> MakeCorrelatedSet(std::size_t count,
                                                     std::size_t length,
                                                     double noise = 0.05,
                                                     std::uint64_t seed = 7) {
  std::vector<ts::TimeSeries> out;
  for (std::size_t s = 0; s < count; ++s) {
    out.push_back(MakeSine(length, 24.0, noise, seed + s, 1.0 + 0.1 * s));
  }
  return out;
}

}  // namespace adarts::testing

#endif  // ADARTS_TESTS_TEST_UTIL_H_
