// Tests of the shared ThreadPool / ParallelFor machinery and of the
// determinism contract: the parallelized training paths (ModelRace candidate
// evaluation, corpus feature extraction, exhaustive labeling) must produce
// bit-identical results for every thread count.

#include <atomic>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "adarts/adarts.h"
#include "automl/model_race.h"
#include "common/exec_context.h"
#include "common/thread_pool.h"
#include "data/generators.h"
#include "labeling/labeler.h"
#include "tests/test_util.h"
#include "ts/missing.h"

namespace adarts {
namespace {

using ::adarts::testing::MakeBlobs;

// ---- ThreadPool / ParallelFor unit tests.

TEST(ThreadPoolTest, ResolvesZeroToHardwareConcurrency) {
  EXPECT_GE(ThreadPool::ResolveThreadCount(0), 1u);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(3), 3u);
}

TEST(ThreadPoolTest, SizeOneSpawnsNoWorkersButStillRuns) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<int> hits(10, 0);
  ParallelFor(&pool, hits.size(), [&](std::size_t i) { hits[i] += 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForTest, NullPoolRunsSerially) {
  std::vector<std::size_t> order;
  ParallelFor(nullptr, 5, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(&pool, kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelForTest, ZeroTasksIsANoOp) {
  ThreadPool pool(4);
  bool called = false;
  ParallelFor(&pool, 0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, MoreWorkersThanTasks) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  ParallelFor(&pool, 3, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, ReusableAcrossManyLoops) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int round = 0; round < 50; ++round) {
    ParallelFor(&pool, 64, [&](std::size_t i) {
      total.fetch_add(static_cast<long>(i), std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 50L * (64L * 63L / 2L));
}

TEST(ParallelForTest, NestedLoopsOnOnePoolDoNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> inner_hits{0};
  ParallelFor(&pool, 4, [&](std::size_t) {
    ParallelFor(&pool, 4, [&](std::size_t) {
      inner_hits.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_hits.load(), 16);
}

// ---- Determinism across thread counts.

automl::ModelRaceOptions DeterministicRaceOptions() {
  automl::ModelRaceOptions options;
  options.num_seed_pipelines = 12;
  options.num_partial_sets = 2;
  options.num_folds = 2;
  // gamma = 0 removes the wall-clock term from the score so the comparison
  // below can demand bit-identical score histories; the structural outputs
  // (specs, prune counts) do not depend on gamma's default either way.
  options.gamma = 0.0;
  options.seed = 11;
  return options;
}

TEST(ThreadDeterminismTest, ModelRaceReportsAreIdenticalFor1And4Threads) {
  const ml::Dataset train = MakeBlobs(3, 30, 6);
  const ml::Dataset test = MakeBlobs(3, 8, 6, /*seed=*/4);

  const automl::ModelRaceOptions options = DeterministicRaceOptions();
  ExecContext serial_ctx(1);
  ExecContext parallel_ctx(4);

  auto a = automl::RunModelRace(train, test, options, serial_ctx);
  auto b = automl::RunModelRace(train, test, options, parallel_ctx);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();

  EXPECT_EQ(a->pipelines_evaluated, b->pipelines_evaluated);
  EXPECT_EQ(a->pipelines_pruned_early, b->pipelines_pruned_early);
  EXPECT_EQ(a->pipelines_pruned_ttest, b->pipelines_pruned_ttest);
  ASSERT_EQ(a->elites.size(), b->elites.size());
  for (std::size_t i = 0; i < a->elites.size(); ++i) {
    EXPECT_EQ(a->elites[i].spec.ToString(), b->elites[i].spec.ToString());
    EXPECT_DOUBLE_EQ(a->elites[i].mean_score, b->elites[i].mean_score);
    EXPECT_DOUBLE_EQ(a->elites[i].mean_f1, b->elites[i].mean_f1);
    ASSERT_EQ(a->elites[i].scores.size(), b->elites[i].scores.size());
    for (std::size_t s = 0; s < a->elites[i].scores.size(); ++s) {
      EXPECT_DOUBLE_EQ(a->elites[i].scores[s], b->elites[i].scores[s]);
    }
  }
}

TEST(ThreadDeterminismTest, TrainRecommendationsAreIdenticalFor1And4Threads) {
  data::GeneratorOptions gopts;
  gopts.num_series = 10;
  gopts.length = 128;
  std::vector<ts::TimeSeries> corpus;
  for (data::Category c : {data::Category::kClimate, data::Category::kMotion}) {
    for (auto& s : data::GenerateCategory(c, gopts)) {
      corpus.push_back(std::move(s));
    }
  }

  TrainOptions opts;
  // Exhaustive labeling exercises the parallel labeling path as well.
  opts.use_cluster_labeling = false;
  opts.labeling.algorithms = {impute::Algorithm::kCdRec,
                              impute::Algorithm::kSvdImpute,
                              impute::Algorithm::kLinearInterp};
  opts.race = DeterministicRaceOptions();
  opts.features.landmarks = 16;

  ExecContext serial_ctx(1);
  ExecContext parallel_ctx(4);

  auto a = Adarts::Train(corpus, opts, serial_ctx);
  auto b = Adarts::Train(corpus, opts, parallel_ctx);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();

  // Identical training data (labels + masked features) ...
  ASSERT_EQ(a->training_data().size(), b->training_data().size());
  EXPECT_EQ(a->training_data().labels, b->training_data().labels);
  for (std::size_t i = 0; i < a->training_data().size(); ++i) {
    const la::Vector& fa = a->training_data().features[i];
    const la::Vector& fb = b->training_data().features[i];
    ASSERT_EQ(fa.size(), fb.size());
    for (std::size_t j = 0; j < fa.size(); ++j) {
      EXPECT_DOUBLE_EQ(fa[j], fb[j]) << "feature " << j << " of series " << i;
    }
  }

  // ... identical committees ...
  ASSERT_EQ(a->committee_size(), b->committee_size());
  for (std::size_t i = 0; i < a->committee().size(); ++i) {
    EXPECT_EQ(a->committee()[i].spec.ToString(),
              b->committee()[i].spec.ToString());
  }

  // ... and identical recommendations on fresh faulty probes.
  gopts.num_series = 4;
  gopts.seed = 99;
  for (auto& probe : data::GenerateCategory(data::Category::kClimate, gopts)) {
    Rng rng(3);
    ASSERT_TRUE(ts::InjectSingleBlock(12, &rng, &probe).ok());
    auto ra = a->Recommend(probe);
    auto rb = b->Recommend(probe);
    ASSERT_TRUE(ra.ok());
    ASSERT_TRUE(rb.ok());
    EXPECT_EQ(*ra, *rb);
    auto ranked_a = a->RecommendRanked(probe);
    auto ranked_b = b->RecommendRanked(probe);
    ASSERT_TRUE(ranked_a.ok());
    ASSERT_TRUE(ranked_b.ok());
    EXPECT_EQ(*ranked_a, *ranked_b);
  }
}

TEST(ThreadDeterminismTest, ExhaustiveLabelingIsIdenticalAcrossThreadCounts) {
  const std::vector<ts::TimeSeries> series =
      testing::MakeCorrelatedSet(10, 96);
  labeling::LabelingOptions opts;
  opts.algorithms = {impute::Algorithm::kCdRec, impute::Algorithm::kSvdImpute,
                     impute::Algorithm::kLinearInterp,
                     impute::Algorithm::kMeanImpute};

  ExecContext serial_ctx(1);
  ExecContext parallel_ctx(4);

  auto a = labeling::LabelSeriesFull(series, opts, serial_ctx);
  auto b = labeling::LabelSeriesFull(series, opts, parallel_ctx);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(a->labels, b->labels);
  EXPECT_EQ(a->imputation_runs, b->imputation_runs);
  ASSERT_EQ(a->rmse.rows(), b->rmse.rows());
  ASSERT_EQ(a->rmse.cols(), b->rmse.cols());
  for (std::size_t r = 0; r < a->rmse.rows(); ++r) {
    for (std::size_t c = 0; c < a->rmse.cols(); ++c) {
      EXPECT_DOUBLE_EQ(a->rmse(r, c), b->rmse(r, c));
    }
  }
}

}  // namespace
}  // namespace adarts
