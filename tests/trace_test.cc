// Tests for the tracing + profiling subsystem (DESIGN.md §9): the global
// event tracer with its per-thread ring buffers and Chrome trace-event
// export, the fixed-layout latency histograms and their 1-vs-N-thread
// bit-determinism contract, and the leveled logging facade. The TraceTest /
// HistogramTest suites run under the TSan CI job (`Trace|Histogram` is part
// of its regex) to prove the lock-free recording paths are race-free.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/exec_context.h"
#include "common/histogram.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "tests/test_util.h"

namespace adarts {
namespace {

// ---------------------------------------------------------------------------
// Tracer: sessions, ring buffers, export.

/// Every test leaves the global tracer disarmed and empty: the tracer is a
/// process-wide singleton, so leaked state would bleed into other suites.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { Tracer::Global().Reset(); }
  void TearDown() override { Tracer::Global().Reset(); }
};

TEST_F(TraceTest, DisabledTracerRecordsNothing) {
  Tracer& tracer = Tracer::Global();
  ASSERT_FALSE(tracer.enabled());
  {
    TraceSpan span("test.span");
    EXPECT_FALSE(span.enabled());
  }
  tracer.RecordInstant("test.instant");
  tracer.RecordCounter("test.counter", 1.0);
  tracer.RecordComplete("test.complete", 0, 10);
  EXPECT_EQ(tracer.event_count(), 0u);
  EXPECT_EQ(tracer.thread_count(), 0u);
  EXPECT_EQ(tracer.NowNs(), 0u);
}

TEST_F(TraceTest, StartIsFirstOwnerWins) {
  Tracer& tracer = Tracer::Global();
  TraceOptions options;
  options.enabled = true;
  EXPECT_TRUE(tracer.Start(options));
  EXPECT_FALSE(tracer.Start(options)) << "second Start must not steal the "
                                         "active session";
  tracer.Stop();
  EXPECT_TRUE(tracer.Start(options)) << "a stopped tracer can be restarted";
}

TEST_F(TraceTest, SpansInstantsAndCountersAreRecordedAndExported) {
  Tracer& tracer = Tracer::Global();
  TraceOptions options;
  options.enabled = true;
  ASSERT_TRUE(tracer.Start(options));
  {
    TraceSpan outer("test.outer", "corpus=48");
    {
      TraceSpan inner("test.inner");
      EXPECT_TRUE(inner.enabled());
    }
  }
  tracer.RecordInstant("test.warning", "something odd");
  tracer.RecordCounter("test.active", 7.0);
  tracer.Stop();

  EXPECT_EQ(tracer.event_count(), 4u);
  EXPECT_EQ(tracer.thread_count(), 1u);
  const std::string json = tracer.ToJson();
  EXPECT_NE(json.find("{\"traceEvents\":["), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test.outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test.inner\""), std::string::npos);
  EXPECT_NE(json.find("\"detail\":\"corpus=48\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"value\":7.000000}"), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\":0"), std::string::npos);
}

TEST_F(TraceTest, CancelledSpanIsNotRecorded) {
  Tracer& tracer = Tracer::Global();
  TraceOptions options;
  options.enabled = true;
  ASSERT_TRUE(tracer.Start(options));
  {
    TraceSpan span("test.cancelled");
    span.Cancel();
  }
  {
    TraceSpan span("test.stopped");
    span.Stop();
    span.Stop();  // idempotent: destructor must not double-record
  }
  tracer.Stop();
  EXPECT_EQ(tracer.event_count(), 1u);
  EXPECT_EQ(tracer.ToJson().find("test.cancelled"), std::string::npos);
}

TEST_F(TraceTest, FullRingDropsNewEventsWithoutBlockingOrReallocating) {
  Tracer& tracer = Tracer::Global();
  TraceOptions options;
  options.enabled = true;
  options.capacity_per_thread = 8;
  ASSERT_TRUE(tracer.Start(options));
  for (int i = 0; i < 20; ++i) tracer.RecordInstant("test.flood");
  tracer.Stop();
  EXPECT_EQ(tracer.event_count(), 8u) << "ring must hold exactly its "
                                         "capacity";
  EXPECT_EQ(tracer.dropped_events(), 12u);
  EXPECT_NE(tracer.ToJson().find("\"dropped_events\":12"), std::string::npos);
}

TEST_F(TraceTest, DetailIsTruncatedToInlineCapacity) {
  Tracer& tracer = Tracer::Global();
  TraceOptions options;
  options.enabled = true;
  ASSERT_TRUE(tracer.Start(options));
  const std::string long_detail(200, 'x');
  tracer.RecordInstant("test.truncate", long_detail);
  tracer.Stop();
  const std::string kept(Tracer::kDetailCapacity - 1, 'x');
  const std::string json = tracer.ToJson();
  EXPECT_NE(json.find("\"detail\":\"" + kept + "\""), std::string::npos);
  EXPECT_EQ(json.find(kept + "x"), std::string::npos)
      << "detail must be cut at kDetailCapacity-1 characters";
}

TEST_F(TraceTest, ConcurrentRecordingFromPoolWorkersIsLossless) {
  Tracer& tracer = Tracer::Global();
  TraceOptions options;
  options.enabled = true;
  ASSERT_TRUE(tracer.Start(options));
  const std::size_t threads = testing::TestThreadCount();
  ThreadPool pool(threads);
  constexpr std::size_t kEvents = 4000;
  ParallelFor(&pool, kEvents, [&](std::size_t) {
    TraceSpan span("test.parallel");
  });
  tracer.Stop();
  // ParallelFor emits one pool.chunk span per drained chunk on top of the
  // kEvents test spans; every event must have landed in some ring.
  EXPECT_GE(tracer.event_count(), kEvents);
  EXPECT_EQ(tracer.dropped_events(), 0u);
  EXPECT_GE(tracer.thread_count(), 1u);
  // On a loaded (or single-core) machine the caller may drain every chunk
  // before a worker wakes; but any worker that did record must show up as a
  // named track.
  if (tracer.thread_count() > 1) {
    EXPECT_NE(tracer.ToJson().find("pool-worker-"), std::string::npos)
        << "worker tracks must be named in the export";
  }
  (void)threads;
}

TEST_F(TraceTest, ScopedTraceExportsToPathOnDestruction) {
  const std::string path =
      ::testing::TempDir() + "/adarts_scoped_trace_test.json";
  std::remove(path.c_str());
  {
    TraceOptions options;
    options.enabled = true;
    options.path = path;
    ScopedTrace session(options);
    ASSERT_TRUE(session.active());
    TraceSpan span("test.scoped");
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr) << "ScopedTrace destructor must write " << path;
  std::string content;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_NE(content.find("{\"traceEvents\":["), std::string::npos);
  EXPECT_NE(content.find("\"name\":\"test.scoped\""), std::string::npos);
  EXPECT_FALSE(Tracer::Global().enabled())
      << "session must be stopped after the owning scope ends";
}

TEST_F(TraceTest, ExecContextOwnsSessionAndInactiveWithoutOptions) {
  {
    TraceOptions options;
    options.enabled = true;
    ExecContext ctx(1, nullptr, options);
    EXPECT_TRUE(ctx.owns_trace());
    EXPECT_TRUE(Tracer::Global().enabled());
    // A nested context (the common case: helpers build their own) must not
    // steal or end the outer session.
    {
      ExecContext inner(1, nullptr, options);
      EXPECT_FALSE(inner.owns_trace());
    }
    EXPECT_TRUE(Tracer::Global().enabled());
  }
  EXPECT_FALSE(Tracer::Global().enabled());
  ExecContext plain(1);
  EXPECT_FALSE(plain.owns_trace())
      << "default context must not start tracing (ADARTS_TRACE unset)";
}

// ---------------------------------------------------------------------------
// Latency histograms: layout, exact percentiles, bit-determinism.

TEST(HistogramTest, BucketLayoutIsExactBelowSixteenAndMonotoneAbove) {
  for (std::uint64_t ns = 0; ns < LatencyHistogram::kSubBuckets; ++ns) {
    EXPECT_EQ(LatencyHistogram::BucketIndex(ns), ns);
    EXPECT_EQ(LatencyHistogram::BucketUpperBound(ns), ns);
  }
  std::size_t prev = LatencyHistogram::BucketIndex(15);
  for (std::uint64_t ns : {16ull, 31ull, 32ull, 1000ull, 1ull << 20,
                           1ull << 40}) {
    const std::size_t index = LatencyHistogram::BucketIndex(ns);
    EXPECT_GT(index, prev) << "bucket index must grow with the value";
    EXPECT_LT(index, LatencyHistogram::kNumBuckets);
    EXPECT_GE(LatencyHistogram::BucketUpperBound(index), ns)
        << "a value must not exceed its bucket's upper bound";
    prev = index;
  }
  // Values beyond the top tier clamp into the last bucket instead of
  // indexing out of range.
  EXPECT_EQ(LatencyHistogram::BucketIndex(~0ull),
            LatencyHistogram::kNumBuckets - 1);
}

TEST(HistogramTest, ExactPercentilesOnKnownSmallValues) {
  // Values below 16 ns land in exact unit buckets, so nearest-rank
  // percentiles over {1..10} are exact: rank(ceil(q*10)) of the sorted list.
  LatencyHistogram hist;
  for (std::uint64_t ns = 1; ns <= 10; ++ns) hist.Record(ns);
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 10u);
  EXPECT_EQ(snap.sum_ns, 55u);
  EXPECT_EQ(snap.max_ns, 10u);
  EXPECT_EQ(snap.p50_ns, 5u);
  EXPECT_EQ(snap.p90_ns, 9u);
  EXPECT_EQ(snap.p99_ns, 10u);
  EXPECT_DOUBLE_EQ(snap.MeanNs(), 5.5);
}

TEST(HistogramTest, PercentileIsBucketRepresentativeForLargeValues) {
  LatencyHistogram hist;
  hist.Record(1000);
  const HistogramSnapshot snap = hist.Snapshot();
  const std::uint64_t representative =
      LatencyHistogram::BucketUpperBound(LatencyHistogram::BucketIndex(1000));
  EXPECT_EQ(snap.p50_ns, representative);
  EXPECT_EQ(snap.p99_ns, representative);
  EXPECT_GE(representative, 1000u);
  EXPECT_EQ(snap.max_ns, 1000u) << "max is exact, not bucketed";
}

TEST(HistogramTest, EmptySnapshotIsAllZeros) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.Snapshot(), HistogramSnapshot{});
  EXPECT_DOUBLE_EQ(hist.Snapshot().MeanNs(), 0.0);
}

TEST(HistogramTest, OneVsManyThreadsProduceBitIdenticalSnapshots) {
  // The same multiset of durations must yield the same snapshot no matter
  // how many threads recorded it or in what interleaving — the property
  // that lets the engine expose percentiles without perturbing its
  // bit-determinism contract.
  const auto value_for = [](std::size_t i) {
    return static_cast<std::uint64_t>((i * 977) % 2'000'003);
  };
  constexpr std::size_t kN = 50000;
  LatencyHistogram serial;
  for (std::size_t i = 0; i < kN; ++i) serial.Record(value_for(i));
  LatencyHistogram parallel;
  ThreadPool pool(testing::TestThreadCount(8));
  ParallelFor(&pool, kN, [&](std::size_t i) { parallel.Record(value_for(i)); });
  EXPECT_EQ(serial.Snapshot(), parallel.Snapshot());
}

TEST(HistogramTest, MergeFromMatchesDirectRecordingAndCommutes) {
  const auto fill = [](LatencyHistogram& hist, std::size_t begin,
                       std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      hist.Record(static_cast<std::uint64_t>(i * 131) % 100000);
    }
  };
  LatencyHistogram whole;
  fill(whole, 0, 3000);
  LatencyHistogram a;
  LatencyHistogram b;
  fill(a, 0, 1000);
  fill(b, 1000, 3000);
  LatencyHistogram ab;
  ab.MergeFrom(a);
  ab.MergeFrom(b);
  LatencyHistogram ba;
  ba.MergeFrom(b);
  ba.MergeFrom(a);
  EXPECT_EQ(ab.Snapshot(), whole.Snapshot());
  EXPECT_EQ(ba.Snapshot(), whole.Snapshot());
}

TEST(HistogramTest, RegisteredInMetricsAndSurfacedInSnapshots) {
  Metrics metrics;
  LatencyHistogram* hist = metrics.histogram("unit.latency");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist, metrics.histogram("unit.latency"))
      << "handle must be stable so hot loops can hoist it";
  hist->Record(5);
  hist->Record(7);
  hist->RecordSeconds(-1.0);  // negative durations clamp to 0
  const StageMetrics snap = metrics.Snapshot();
  EXPECT_EQ(snap.Histogram("unit.latency").count, 3u);
  EXPECT_EQ(snap.Histogram("unit.latency").max_ns, 7u);
  EXPECT_EQ(snap.Histogram("no.such").count, 0u);
  EXPECT_FALSE(snap.empty());
  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"histograms\":{\"unit.latency\":{\"count\":3,"),
            std::string::npos)
      << json;
  EXPECT_NE(snap.ToString().find("unit.latency=count:3"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Leveled logging.

/// Restores the default stderr sink even if an assertion fails mid-test.
class ScopedLogSink {
 public:
  explicit ScopedLogSink(LogSink sink) { SetLogSink(std::move(sink)); }
  ~ScopedLogSink() { SetLogSink(nullptr); }
};

TEST(LogTest, CustomSinkReceivesAllLevelsRegardlessOfQuiet) {
  std::vector<std::pair<LogLevel, std::string>> seen;
  ScopedLogSink scoped([&](LogLevel level, const std::string& message) {
    seen.emplace_back(level, message);
  });
  ::setenv("ADARTS_QUIET", "1", 1);
  LogInfo("info line");
  LogWarn("warn line");
  LogError("error line");
  LogWarn(std::string("dynamic ") + "warn");  // std::string overload stays
  ::unsetenv("ADARTS_QUIET");
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[0].first, LogLevel::kInfo);
  EXPECT_EQ(seen[1].first, LogLevel::kWarn);
  EXPECT_EQ(seen[2].first, LogLevel::kError);
  EXPECT_EQ(seen[2].second, "error line");
  EXPECT_EQ(seen[3].second, "dynamic warn");
}

TEST(LogTest, QuietIsReadPerCallNotLatched) {
  // The old implementation latched ADARTS_QUIET in a static on first use;
  // toggling it mid-process must take effect immediately.
  ::unsetenv("ADARTS_QUIET");
  ::testing::internal::CaptureStderr();
  LogWarn("audible");
  EXPECT_NE(::testing::internal::GetCapturedStderr().find("audible"),
            std::string::npos);
  ::setenv("ADARTS_QUIET", "1", 1);
  ::testing::internal::CaptureStderr();
  LogWarn("silenced");
  LogError("still audible");
  const std::string quiet_out = ::testing::internal::GetCapturedStderr();
  ::unsetenv("ADARTS_QUIET");
  EXPECT_EQ(quiet_out.find("silenced"), std::string::npos)
      << "ADARTS_QUIET must suppress WARN after being set mid-process";
  EXPECT_NE(quiet_out.find("still audible"), std::string::npos)
      << "ERROR is never suppressed";
  ::testing::internal::CaptureStderr();
  LogWarn("audible again");
  EXPECT_NE(::testing::internal::GetCapturedStderr().find("audible again"),
            std::string::npos)
      << "unsetting ADARTS_QUIET must restore output";
}

TEST(LogTest, WarningsBecomeTraceInstantsWhileTracing) {
  Tracer& tracer = Tracer::Global();
  tracer.Reset();
  TraceOptions options;
  options.enabled = true;
  ASSERT_TRUE(tracer.Start(options));
  ScopedLogSink scoped([](LogLevel, const std::string&) {});  // mute stderr
  LogInfo("not on the timeline");
  LogWarn("degraded to fallback");
  LogError("fit failed");
  tracer.Stop();
  const std::string json = tracer.ToJson();
  EXPECT_NE(json.find("\"name\":\"log.warn\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"log.error\""), std::string::npos);
  EXPECT_NE(json.find("\"detail\":\"degraded to fallback\""),
            std::string::npos);
  EXPECT_EQ(json.find("not on the timeline"), std::string::npos)
      << "INFO lines stay off the trace";
  tracer.Reset();
}

}  // namespace
}  // namespace adarts
