#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tests/test_util.h"
#include "ts/acf.h"
#include "ts/correlation.h"
#include "ts/fft.h"
#include "ts/metrics.h"
#include "ts/missing.h"
#include "ts/time_series.h"

namespace adarts::ts {
namespace {

using ::adarts::testing::MakeSine;

TEST(TimeSeriesTest, ConstructionAndMask) {
  TimeSeries s({1.0, 2.0, 3.0});
  EXPECT_EQ(s.length(), 3u);
  EXPECT_FALSE(s.HasMissing());
  s.SetMissing(1, true);
  EXPECT_TRUE(s.HasMissing());
  EXPECT_EQ(s.MissingCount(), 1u);
  EXPECT_EQ(s.MissingIndices(), (std::vector<std::size_t>{1}));
  EXPECT_EQ(s.ObservedValues(), (la::Vector{1.0, 3.0}));
}

TEST(TimeSeriesTest, ObservedMoments) {
  TimeSeries s({2.0, 100.0, 4.0}, {false, true, false});
  EXPECT_DOUBLE_EQ(s.ObservedMean(), 3.0);
  EXPECT_DOUBLE_EQ(s.ObservedStdDev(), 1.0);
}

TEST(TimeSeriesTest, ZNormalizedPreservesMask) {
  TimeSeries s({1.0, 2.0, 3.0, 4.0}, {false, true, false, false});
  const TimeSeries z = s.ZNormalized();
  EXPECT_TRUE(z.IsMissing(1));
  EXPECT_NEAR(la::Mean(z.ObservedValues()), 0.0, 1e-12);
}

TEST(TimeSeriesTest, ZNormalizedConstantSeriesIsZero) {
  TimeSeries s({5.0, 5.0, 5.0});
  const TimeSeries z = s.ZNormalized();
  for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(z.value(i), 0.0);
}

TEST(MissingTest, SingleBlockInjection) {
  Rng rng(1);
  TimeSeries s(la::Vector(100, 1.0));
  ASSERT_TRUE(InjectSingleBlock(10, &rng, &s).ok());
  EXPECT_EQ(s.MissingCount(), 10u);
  // Block is contiguous.
  const auto idx = s.MissingIndices();
  for (std::size_t i = 1; i < idx.size(); ++i) {
    EXPECT_EQ(idx[i], idx[i - 1] + 1);
  }
  // First observation stays intact (anchor).
  EXPECT_FALSE(s.IsMissing(0));
}

TEST(MissingTest, SingleBlockRejectsOversizedBlock) {
  Rng rng(2);
  TimeSeries s(la::Vector(10, 1.0));
  EXPECT_FALSE(InjectSingleBlock(10, &rng, &s).ok());
  EXPECT_FALSE(InjectSingleBlock(0, &rng, &s).ok());
}

TEST(MissingTest, MultiBlockDisjoint) {
  Rng rng(3);
  TimeSeries s(la::Vector(120, 1.0));
  ASSERT_TRUE(InjectMultiBlock(3, 8, &rng, &s).ok());
  EXPECT_EQ(s.MissingCount(), 24u);
  // Exactly three contiguous runs.
  int runs = 0;
  bool in_run = false;
  for (std::size_t i = 0; i < s.length(); ++i) {
    if (s.IsMissing(i) && !in_run) {
      ++runs;
      in_run = true;
    } else if (!s.IsMissing(i)) {
      in_run = false;
    }
  }
  EXPECT_EQ(runs, 3);
}

TEST(MissingTest, TipBlockAtEnd) {
  TimeSeries s(la::Vector(100, 1.0));
  ASSERT_TRUE(InjectTipBlock(0.2, &s).ok());
  EXPECT_EQ(s.MissingCount(), 20u);
  EXPECT_TRUE(s.IsMissing(99));
  EXPECT_TRUE(s.IsMissing(80));
  EXPECT_FALSE(s.IsMissing(79));
}

TEST(MissingTest, TipBlockRejectsBadFraction) {
  TimeSeries s(la::Vector(100, 1.0));
  EXPECT_FALSE(InjectTipBlock(0.0, &s).ok());
  EXPECT_FALSE(InjectTipBlock(1.0, &s).ok());
}

class PatternTest : public ::testing::TestWithParam<MissingPattern> {};

TEST_P(PatternTest, InjectsSomethingReasonable) {
  Rng rng(4);
  TimeSeries s(la::Vector(200, 1.0));
  ASSERT_TRUE(InjectPattern(GetParam(), 0.1, &rng, &s).ok());
  EXPECT_GT(s.MissingCount(), 0u);
  EXPECT_LT(s.MissingCount(), s.length() / 2 + 1);
}

INSTANTIATE_TEST_SUITE_P(AllPatterns, PatternTest,
                         ::testing::Values(MissingPattern::kSingleBlock,
                                           MissingPattern::kMultiBlock,
                                           MissingPattern::kBlackout,
                                           MissingPattern::kTipOfSeries));

TEST(MetricsTest, RmseOnKnownValues) {
  TimeSeries truth({1.0, 2.0, 3.0, 4.0}, {false, true, true, false});
  TimeSeries imputed({1.0, 2.5, 2.0, 4.0});
  auto rmse = ImputationRmse(truth, imputed);
  ASSERT_TRUE(rmse.ok());
  EXPECT_NEAR(*rmse, std::sqrt((0.25 + 1.0) / 2.0), 1e-12);
  auto mae = ImputationMae(truth, imputed);
  ASSERT_TRUE(mae.ok());
  EXPECT_NEAR(*mae, 0.75, 1e-12);
}

TEST(MetricsTest, RmseRequiresMaskedPositions) {
  TimeSeries truth({1.0, 2.0});
  TimeSeries imputed({1.0, 2.0});
  EXPECT_FALSE(ImputationRmse(truth, imputed).ok());
}

TEST(MetricsTest, SmapePerfectForecastIsZero) {
  auto s = Smape({1.0, 2.0, 3.0}, {1.0, 2.0, 3.0});
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(*s, 0.0);
}

TEST(MetricsTest, SmapeBoundedByTwo) {
  auto s = Smape({1.0, 1.0}, {-1.0, -1.0});
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(*s, 2.0, 1e-12);
}

TEST(CorrelationTest, IdenticalSeriesPerfect) {
  const TimeSeries s = MakeSine(64, 16.0);
  EXPECT_NEAR(Pearson(s, s), 1.0, 1e-12);
}

TEST(CorrelationTest, ShiftedSineFoundByMaxCrossCorrelation) {
  const TimeSeries a = MakeSine(128, 32.0);
  const TimeSeries b = MakeSine(128, 32.0, 0.0, 5, 1.0, 3.14159 / 2.0);
  // Plain Pearson is weak for a quarter-period shift...
  EXPECT_LT(std::fabs(Pearson(a, b)), 0.3);
  // ...but lag search recovers the alignment.
  EXPECT_GT(MaxCrossCorrelation(a.values(), b.values(), 16), 0.9);
}

TEST(CorrelationTest, NccAllLagsMatchesDirectComputation) {
  Rng rng(6);
  la::Vector a(40), b(40);
  for (std::size_t i = 0; i < 40; ++i) {
    a[i] = rng.Normal(0, 1);
    b[i] = rng.Normal(0, 1);
  }
  const la::Vector fft_ncc = NccAllLags(a, b);
  for (int lag = -8; lag <= 8; ++lag) {
    const double direct = NormalizedCrossCorrelation(a, b, lag);
    const double via_fft = fft_ncc[static_cast<std::size_t>(lag + 39)];
    EXPECT_NEAR(direct, via_fft, 1e-9) << "lag " << lag;
  }
}

TEST(CorrelationTest, BestAlignmentFindsShift) {
  const la::Vector a = MakeSine(128, 32.0).values();
  // b = a delayed by 8 samples.
  la::Vector b(128, 0.0);
  for (std::size_t i = 8; i < 128; ++i) b[i] = a[i - 8];
  const SbdAlignment al = BestAlignment(a, b);
  EXPECT_GT(al.ncc, 0.85);
  EXPECT_NEAR(static_cast<double>(al.shift), -8.0, 2.0);
}

TEST(CorrelationTest, ShapeBasedDistanceZeroForSelf) {
  const la::Vector a = MakeSine(64, 16.0).values();
  EXPECT_NEAR(ShapeBasedDistance(a, a), 0.0, 1e-9);
}

TEST(CorrelationTest, AveragePairwiseSingletonIsOne) {
  EXPECT_DOUBLE_EQ(AveragePairwiseCorrelation({MakeSine(32, 8.0)}), 1.0);
}

TEST(FftTest, RoundTrip) {
  Rng rng(7);
  std::vector<std::complex<double>> data(64);
  std::vector<std::complex<double>> original(64);
  for (std::size_t i = 0; i < 64; ++i) {
    data[i] = {rng.Normal(0, 1), rng.Normal(0, 1)};
    original[i] = data[i];
  }
  Fft(&data);
  Fft(&data, /*inverse=*/true);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_NEAR(data[i].real() / 64.0, original[i].real(), 1e-10);
    EXPECT_NEAR(data[i].imag() / 64.0, original[i].imag(), 1e-10);
  }
}

TEST(FftTest, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(1000), 1024u);
}

TEST(FftTest, DominantFrequencyOfPureSine) {
  // Period 16 over 128 samples (padded to 128): bin = 128/16 = 8.
  const la::Vector v = MakeSine(128, 16.0).values();
  EXPECT_EQ(DominantFrequencyBin(v), 8u);
  EXPECT_NEAR(EstimatePeriod(v), 16.0, 1.0);
}

TEST(FftTest, SpectralEntropyOrdering) {
  // A pure tone concentrates the spectrum; white noise spreads it.
  const la::Vector tone = MakeSine(256, 16.0).values();
  Rng rng(8);
  la::Vector noise(256);
  for (double& x : noise) x = rng.Normal(0, 1);
  EXPECT_LT(SpectralEntropy(tone), SpectralEntropy(noise));
  EXPECT_GE(SpectralEntropy(tone), 0.0);
  EXPECT_LE(SpectralEntropy(noise), 1.0);
}

TEST(AcfTest, WhiteNoiseDecorrelated) {
  Rng rng(9);
  la::Vector v(2000);
  for (double& x : v) x = rng.Normal(0, 1);
  const la::Vector acf = Acf(v, 5);
  EXPECT_DOUBLE_EQ(acf[0], 1.0);
  for (std::size_t lag = 1; lag <= 5; ++lag) {
    EXPECT_LT(std::fabs(acf[lag]), 0.08);
  }
}

TEST(AcfTest, PeriodicSignalPeaksAtPeriod) {
  const la::Vector v = MakeSine(256, 16.0).values();
  const la::Vector acf = Acf(v, 20);
  EXPECT_GT(acf[16], 0.8);
  EXPECT_LT(acf[8], -0.8);  // half-period anti-correlation
}

TEST(AcfTest, Ar1ProcessPacfCutsOff) {
  // AR(1): PACF significant at lag 1, near zero beyond.
  Rng rng(10);
  la::Vector v(3000);
  v[0] = 0.0;
  for (std::size_t t = 1; t < v.size(); ++t) {
    v[t] = 0.7 * v[t - 1] + rng.Normal(0, 1);
  }
  const la::Vector pacf = Pacf(v, 4);
  EXPECT_NEAR(pacf[0], 0.7, 0.07);
  for (std::size_t lag = 1; lag < 4; ++lag) {
    EXPECT_LT(std::fabs(pacf[lag]), 0.1);
  }
}

TEST(AcfTest, FirstCrossingOnNoiseIsImmediate) {
  Rng rng(11);
  la::Vector v(500);
  for (double& x : v) x = rng.Normal(0, 1);
  EXPECT_EQ(FirstAcfCrossing(v, 20), 1u);
}

}  // namespace
}  // namespace adarts::ts
