// adarts_cli — command-line front end to the A-DARTS library.
//
//   adarts_cli generate  --category Power --series 20 --length 192
//                        --seed 1 --out corpus.csv
//   adarts_cli inject    --input corpus.csv --fraction 0.1
//                        --pattern single_block --seed 2 --out faulty.csv
//   adarts_cli label     --corpus corpus.csv
//   adarts_cli recommend --corpus corpus.csv --faulty faulty.csv
//   adarts_cli repair    --corpus corpus.csv --faulty faulty.csv
//                        --out repaired.csv
//
// `--corpus` supplies complete historical series to train the engine on;
// `--faulty` contains the series to diagnose/repair (empty cells = missing).

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "adarts/adarts.h"
#include "cluster/incremental.h"
#include "common/rng.h"
#include "common/trace.h"
#include "data/generators.h"
#include "io/csv.h"
#include "labeling/labeler.h"
#include "ts/missing.h"

namespace adarts::cli {
namespace {

using Args = std::map<std::string, std::string>;

/// Parses "--key value" pairs after the subcommand.
Args ParseArgs(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    if (key.rfind("--", 0) == 0) key = key.substr(2);
    args[key] = argv[i + 1];
  }
  return args;
}

std::string GetArg(const Args& args, const std::string& key,
                   const std::string& fallback) {
  const auto it = args.find(key);
  return it != args.end() ? it->second : fallback;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: adarts_cli <generate|inject|label|train|append|info|"
               "recommend|repair> [--key value]...\n"
               "  generate  --category <Power|Water|Motion|Climate|Lightning|"
               "Medical>\n"
               "            [--series N] [--length N] [--variant N] "
               "[--seed N] --out FILE\n"
               "  inject    --input FILE [--fraction F] [--pattern "
               "single_block|multi_block|blackout|tip_of_series]\n"
               "            [--seed N] --out FILE\n"
               "  label     --corpus FILE\n"
               "  train     --corpus FILE --model FILE [--engine-version N]\n"
               "  append    --model FILE --delta FILE [--seed N] [--cold 1]\n"
               "            (incrementally grows the snapshot in place and\n"
               "             bumps engine_version — follow with kill -HUP on\n"
               "             adarts_serve for a zero-downtime rollout)\n"
               "  info      --model FILE\n"
               "  recommend (--corpus FILE | --model FILE) --faulty FILE\n"
               "  repair    (--corpus FILE | --model FILE) --faulty FILE --out FILE\n"
               "  any subcommand also accepts --trace FILE to export a Chrome\n"
               "  trace-event JSON timeline of the run (see tools/trace_stats)\n");
  return 2;
}

Result<data::Category> ParseCategory(const std::string& name) {
  for (data::Category c : data::AllCategories()) {
    if (data::CategoryToString(c) == name) return c;
  }
  return Status::NotFound("unknown category: " + name);
}

Result<ts::MissingPattern> ParsePattern(const std::string& name) {
  for (ts::MissingPattern p :
       {ts::MissingPattern::kSingleBlock, ts::MissingPattern::kMultiBlock,
        ts::MissingPattern::kBlackout, ts::MissingPattern::kTipOfSeries}) {
    if (ts::MissingPatternToString(p) == name) return p;
  }
  return Status::NotFound("unknown pattern: " + name);
}

int CmdGenerate(const Args& args) {
  auto category = ParseCategory(GetArg(args, "category", "Power"));
  if (!category.ok()) return Fail(category.status());
  data::GeneratorOptions opts;
  opts.num_series = std::strtoul(GetArg(args, "series", "20").c_str(), nullptr, 10);
  opts.length = std::strtoul(GetArg(args, "length", "192").c_str(), nullptr, 10);
  opts.variant = std::atoi(GetArg(args, "variant", "0").c_str());
  opts.seed = std::strtoull(GetArg(args, "seed", "1").c_str(), nullptr, 10);
  const std::string out = GetArg(args, "out", "");
  if (out.empty()) return Usage();
  const auto series = data::GenerateCategory(*category, opts);
  if (auto st = io::WriteSeriesCsv(out, series); !st.ok()) return Fail(st);
  std::printf("wrote %zu series of length %zu to %s\n", series.size(),
              opts.length, out.c_str());
  return 0;
}

int CmdInject(const Args& args) {
  auto set = io::ReadSeriesCsv(GetArg(args, "input", ""));
  if (!set.ok()) return Fail(set.status());
  auto pattern = ParsePattern(GetArg(args, "pattern", "single_block"));
  if (!pattern.ok()) return Fail(pattern.status());
  const double fraction = std::atof(GetArg(args, "fraction", "0.1").c_str());
  Rng rng(std::strtoull(GetArg(args, "seed", "2").c_str(), nullptr, 10));
  for (auto& s : *set) {
    if (auto st = ts::InjectPattern(*pattern, fraction, &rng, &s); !st.ok()) {
      return Fail(st);
    }
  }
  const std::string out = GetArg(args, "out", "");
  if (out.empty()) return Usage();
  if (auto st = io::WriteSeriesCsv(out, *set); !st.ok()) return Fail(st);
  std::size_t missing = 0, total = 0;
  for (const auto& s : *set) {
    missing += s.MissingCount();
    total += s.length();
  }
  std::printf("masked %zu of %zu values (%.1f%%) -> %s\n", missing, total,
              100.0 * missing / total, out.c_str());
  return 0;
}

int CmdLabel(const Args& args) {
  auto corpus = io::ReadSeriesCsv(GetArg(args, "corpus", ""));
  if (!corpus.ok()) return Fail(corpus.status());
  auto clustering = cluster::IncrementalClustering(*corpus, {});
  if (!clustering.ok()) return Fail(clustering.status());
  auto labels = labeling::LabelByClusters(*corpus, *clustering, {});
  if (!labels.ok()) return Fail(labels.status());
  std::printf("%zu series -> %zu clusters, %zu imputation runs\n",
              corpus->size(), clustering->NumClusters(),
              labels->imputation_runs);
  for (std::size_t c = 0; c < clustering->clusters.size(); ++c) {
    const auto& members = clustering->clusters[c];
    if (members.empty()) continue;
    const int label = labels->labels[members[0]];
    std::printf("  cluster %zu (%zu series): %s\n", c, members.size(),
                std::string(impute::AlgorithmToString(
                                labels->algorithms[static_cast<std::size_t>(
                                    label)]))
                    .c_str());
  }
  return 0;
}

/// Obtains an engine: from a saved bundle when --model FILE exists, else by
/// training on --corpus FILE (and saving to --model if given).
Result<Adarts> ObtainEngine(const Args& args) {
  const std::string model = GetArg(args, "model", "");
  if (!model.empty()) {
    auto loaded = Adarts::Load(model);
    if (loaded.ok()) return loaded;
    if (GetArg(args, "corpus", "").empty()) return loaded;  // nothing to train on
  }
  ADARTS_ASSIGN_OR_RETURN(std::vector<ts::TimeSeries> corpus,
                          io::ReadSeriesCsv(GetArg(args, "corpus", "")));
  TrainOptions options;
  options.seed = std::strtoull(GetArg(args, "seed", "17").c_str(), nullptr, 10);
  ADARTS_ASSIGN_OR_RETURN(Adarts engine, Adarts::Train(corpus, options));
  // --engine-version stamps the snapshot for hot-swap publishing: a serving
  // daemon's registry only accepts monotonically non-decreasing versions.
  const std::string version = GetArg(args, "engine-version", "");
  if (!version.empty()) {
    engine.set_engine_version(
        std::strtoull(version.c_str(), nullptr, 10));
  }
  if (!model.empty()) {
    ADARTS_RETURN_NOT_OK(engine.Save(model));
  }
  return engine;
}

int CmdTrain(const Args& args) {
  if (GetArg(args, "model", "").empty() || GetArg(args, "corpus", "").empty()) {
    return Usage();
  }
  // train always retrains: discard any stale bundle at the target path so
  // ObtainEngine cannot short-circuit by loading it.
  std::remove(GetArg(args, "model", "").c_str());
  auto engine = ObtainEngine(args);
  if (!engine.ok()) return Fail(engine.status());
  std::printf("trained committee of %zu pipelines over %zu algorithms; "
              "saved to %s\n",
              engine->committee_size(), engine->algorithm_pool().size(),
              GetArg(args, "model", "").c_str());
  for (const auto& member : engine->committee()) {
    std::printf("  %s\n", member.spec.ToString().c_str());
  }
  return 0;
}

int CmdAppend(const Args& args) {
  const std::string model = GetArg(args, "model", "");
  const std::string delta_path = GetArg(args, "delta", "");
  if (model.empty() || delta_path.empty()) return Usage();
  auto engine = Adarts::Load(model);
  if (!engine.ok()) return Fail(engine.status());
  auto delta = io::ReadSeriesCsv(delta_path);
  if (!delta.ok()) return Fail(delta.status());
  UpdateOptions options;
  options.seed = std::strtoull(GetArg(args, "seed", "17").c_str(), nullptr, 10);
  options.warm_start = GetArg(args, "cold", "0") == "0";
  if (auto st = engine->AppendSeries(*delta, options); !st.ok()) return Fail(st);
  // AppendSeries bumped engine_version, so the save below publishes a
  // strictly newer snapshot: a SIGHUP'd adarts_serve accepts the swap.
  const std::string out = GetArg(args, "out", model);
  if (auto st = engine->Save(out); !st.ok()) return Fail(st);
  const auto& counters = engine->train_report().stages.counters;
  const auto counter = [&](const char* name) -> std::uint64_t {
    const auto it = counters.find(name);
    return it != counters.end() ? it->second : 0;
  };
  std::printf("appended %zu series (%llu assigned, %llu split into new "
              "clusters, %llu warm elites survived); corpus now %zu series "
              "in %zu clusters\n",
              delta->size(),
              static_cast<unsigned long long>(counter("update.assigned")),
              static_cast<unsigned long long>(counter("update.splits")),
              static_cast<unsigned long long>(
                  counter("update.race_warm_hits")),
              engine->training_data().size(),
              engine->growth_state().clusters.size());
  std::printf("saved engine v%llu to %s\n",
              static_cast<unsigned long long>(engine->engine_version()),
              out.c_str());
  return 0;
}

int CmdInfo(const Args& args) {
  const std::string model = GetArg(args, "model", "");
  if (model.empty()) return Usage();
  // The header answers the cheap questions (version, creation time) without
  // refitting the committee; the full Load supplies the corpus/cluster view.
  auto header = ReadSnapshotHeader(model);
  if (!header.ok()) return Fail(header.status());
  auto engine = Adarts::Load(model);
  if (!engine.ok()) return Fail(engine.status());
  std::printf("snapshot:              %s\n", model.c_str());
  std::printf("format_version:        %u\n", header->format_version);
  std::printf("engine_version:        %llu\n",
              static_cast<unsigned long long>(header->engine_version));
  std::printf("snapshot_created_unix: %llu\n",
              static_cast<unsigned long long>(header->created_unix));
  std::printf("payload_bytes:         %llu\n",
              static_cast<unsigned long long>(header->payload_bytes));
  std::printf("corpus_series:         %zu\n", engine->training_data().size());
  if (engine->has_growth_state()) {
    std::printf("clusters:              %zu\n",
                engine->growth_state().clusters.size());
    std::printf("warm_start_elites:     %zu\n",
                engine->growth_state().warm_start.elites.size());
  } else {
    std::printf("clusters:              n/a (no growth state; append "
                "unsupported)\n");
  }
  std::printf("committee_size:        %zu\n", engine->committee_size());
  std::printf("algorithm_pool:       ");
  for (const auto algo : engine->algorithm_pool()) {
    std::printf(" %s", std::string(impute::AlgorithmToString(algo)).c_str());
  }
  std::printf("\n");
  return 0;
}

int CmdRecommend(const Args& args) {
  auto engine = ObtainEngine(args);
  if (!engine.ok()) return Fail(engine.status());
  auto faulty = io::ReadSeriesCsv(GetArg(args, "faulty", ""));
  if (!faulty.ok()) return Fail(faulty.status());
  for (const auto& s : *faulty) {
    auto ranking = engine->RecommendRanked(s);
    if (!ranking.ok()) return Fail(ranking.status());
    std::printf("%s (%zu missing):", s.name().c_str(), s.MissingCount());
    for (std::size_t i = 0; i < 3 && i < ranking->size(); ++i) {
      std::printf(" %s",
                  std::string(impute::AlgorithmToString((*ranking)[i])).c_str());
    }
    std::printf("\n");
  }
  return 0;
}

int CmdRepair(const Args& args) {
  auto engine = ObtainEngine(args);
  if (!engine.ok()) return Fail(engine.status());
  auto faulty = io::ReadSeriesCsv(GetArg(args, "faulty", ""));
  if (!faulty.ok()) return Fail(faulty.status());
  auto repaired = engine->RepairSet(*faulty);
  if (!repaired.ok()) return Fail(repaired.status());
  const std::string out = GetArg(args, "out", "");
  if (out.empty()) return Usage();
  if (auto st = io::WriteSeriesCsv(out, *repaired); !st.ok()) return Fail(st);
  std::printf("repaired %zu series -> %s\n", repaired->size(), out.c_str());
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const Args args = ParseArgs(argc, argv, 2);
  // --trace FILE arms the global tracer for the whole command; the JSON is
  // exported when `session` leaves scope, after the subcommand returns.
  TraceOptions trace_options;
  trace_options.path = GetArg(args, "trace", "");
  trace_options.enabled = !trace_options.path.empty();
  ScopedTrace session(trace_options);
  if (command == "generate") return CmdGenerate(args);
  if (command == "inject") return CmdInject(args);
  if (command == "label") return CmdLabel(args);
  if (command == "train") return CmdTrain(args);
  if (command == "append") return CmdAppend(args);
  if (command == "info") return CmdInfo(args);
  if (command == "recommend") return CmdRecommend(args);
  if (command == "repair") return CmdRepair(args);
  return Usage();
}

}  // namespace
}  // namespace adarts::cli

int main(int argc, char** argv) { return adarts::cli::Main(argc, argv); }
