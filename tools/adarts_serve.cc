// adarts_serve — the long-lived serving daemon (DESIGN.md §10).
//
//   adarts_serve --model bundle.adarts [--port N] [--port-file FILE]
//                [--workers N] [--threads-per-worker N] [--queue N]
//                [--max-connections N] [--deadline-ms F]
//                [--http-port N] [--http-port-file FILE]
//                [--drain-grace-ms F] [--metrics-json FILE] [--trace FILE]
//
// Loads an engine snapshot and serves recommend / recommend-batch / repair
// requests over the length-prefixed loopback protocol of src/net/protocol.h.
// Prints `listening on 127.0.0.1:<port>` once ready (and writes the bound
// port to --port-file, so scripts using an ephemeral --port 0 can find it).
//
// The telemetry plane (DESIGN.md §14) rides alongside: kStats frames on the
// main port answer the live folded snapshot as JSON, and --http-port opens
// a plain-HTTP sidecar serving GET /metrics (Prometheus text exposition),
// /healthz (liveness) and /readyz (engine loaded and not draining).
//
// SIGTERM/SIGINT begin a graceful drain: /readyz flips to 503, the optional
// --drain-grace-ms window lets load balancers observe it, then accepting
// stops, every request already admitted to the queue is executed and
// answered, metrics are flushed, and the process exits 0. No in-flight
// reply is dropped.
//
// SIGHUP (or a kReload protocol frame) hot-swaps the engine: the snapshot
// at --model is re-loaded into a staging engine, checksum-verified and
// canary-checked, and only then atomically published — under full traffic,
// with zero dropped requests. A bad snapshot is rejected and the running
// engine keeps serving (DESIGN.md §12).

#include <poll.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <thread>

#include "adarts/adarts.h"
#include "common/log.h"
#include "common/shutdown.h"
#include "common/trace.h"
#include "net/http_endpoint.h"
#include "net/server.h"

namespace adarts::serve {
namespace {

using Args = std::map<std::string, std::string>;

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    if (key.rfind("--", 0) == 0) key = key.substr(2);
    args[key] = argv[i + 1];
  }
  return args;
}

std::string GetArg(const Args& args, const std::string& key,
                   const std::string& fallback) {
  const auto it = args.find(key);
  return it != args.end() ? it->second : fallback;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: adarts_serve --model FILE [--port N] [--port-file FILE]\n"
      "                    [--workers N] [--threads-per-worker N]\n"
      "                    [--queue N] [--max-conns N]\n"
      "                    [--deadline-ms F] [--http-port N]\n"
      "                    [--http-port-file FILE] [--drain-grace-ms F]\n"
      "                    [--metrics-json FILE] [--trace FILE]\n"
      "  --model          engine snapshot written by `adarts_cli train`\n"
      "  --port           TCP port on 127.0.0.1 (default 0 = ephemeral)\n"
      "  --port-file      write the bound port to FILE once listening\n"
      "  --workers        request executor threads (default 1)\n"
      "  --queue          admission queue bound; excess requests are shed\n"
      "                   with an Unavailable response (default 64)\n"
      "  --max-conns      concurrent connection cap; excess connections\n"
      "                   are refused with Unavailable (default 256)\n"
      "  --deadline-ms    default per-request deadline (0 = none)\n"
      "  --http-port      also serve GET /metrics, /healthz, /readyz over\n"
      "                   plain HTTP on this 127.0.0.1 port (0 = ephemeral;\n"
      "                   omit the flag to disable the sidecar)\n"
      "  --http-port-file write the bound HTTP port to FILE once listening\n"
      "  --drain-grace-ms hold /readyz at 503 for this long before the\n"
      "                   drain actually starts (default 0), so load\n"
      "                   balancers can stop routing first\n"
      "  --metrics-json   write the folded StageMetrics JSON here on exit\n"
      "                   (every exit path, including failures)\n"
      "  --trace          export a Chrome trace-event timeline on exit\n"
      "SIGTERM/SIGINT drain gracefully: in-flight requests are answered,\n"
      "metrics flushed, exit code 0.\n"
      "SIGHUP reloads the snapshot at --model and hot-swaps the engine\n"
      "without dropping traffic; a bad snapshot is rejected and the\n"
      "running engine keeps serving.\n");
  return 2;
}

/// Best-effort metrics dump shared by EVERY exit path — the clean drain,
/// poll failures, and drain errors alike. An operator debugging a crashed
/// daemon needs the counters most, so failure paths must not skip them.
void WriteMetricsJson(const std::string& path, const net::Server& server) {
  if (path.empty()) return;
  std::ofstream out(path, std::ios::trunc);
  out << server.MetricsSnapshot().ToJson() << "\n";
  if (!out.good()) {
    LogWarn("serve: cannot write metrics json: " + path);
  }
}

int Main(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  const std::string model = GetArg(args, "model", "");
  if (model.empty()) return Usage();

  TraceOptions trace = TraceOptions::FromEnv();
  const std::string trace_path = GetArg(args, "trace", "");
  if (!trace_path.empty()) {
    trace.enabled = true;
    trace.path = trace_path;
  }
  ScopedTrace trace_session(trace);

  auto engine = Adarts::Load(model);
  if (!engine.ok()) return Fail(engine.status());

  net::ServeOptions options;
  options.port = static_cast<std::uint16_t>(
      std::atoi(GetArg(args, "port", "0").c_str()));
  options.num_workers = static_cast<std::size_t>(
      std::atol(GetArg(args, "workers", "1").c_str()));
  options.threads_per_worker = static_cast<std::size_t>(
      std::atol(GetArg(args, "threads-per-worker", "1").c_str()));
  options.queue_capacity = static_cast<std::size_t>(
      std::atol(GetArg(args, "queue", "64").c_str()));
  // --max-conns is the documented short form; --max-connections stays for
  // compatibility with existing scripts.
  options.max_connections = static_cast<std::size_t>(std::atol(
      GetArg(args, "max-conns", GetArg(args, "max-connections", "256"))
          .c_str()));
  options.default_deadline_ms =
      std::atof(GetArg(args, "deadline-ms", "0").c_str());
  options.model_path = model;

  Status installed = InstallShutdownHandler();
  if (!installed.ok()) return Fail(installed);
  installed = InstallReloadHandler();
  if (!installed.ok()) return Fail(installed);

  net::Server server(*engine, options);
  Status started = server.Start();
  if (!started.ok()) return Fail(started);

  const std::string metrics_path = GetArg(args, "metrics-json", "");

  const std::string port_file = GetArg(args, "port-file", "");
  if (!port_file.empty()) {
    std::ofstream out(port_file, std::ios::trunc);
    out << server.port() << "\n";
    if (!out.good()) {
      return Fail(Status::Internal("cannot write port file: " + port_file));
    }
  }
  std::printf("listening on 127.0.0.1:%u\n",
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  // The telemetry sidecar: plain HTTP, loopback only, same folded snapshot
  // the kStats frame serves. `draining` is flipped by the SIGTERM path
  // BEFORE the actual drain starts so /readyz turns 503 while /metrics and
  // /healthz keep answering through the whole drain.
  std::atomic<bool> draining{false};
  net::HttpEndpoint http;
  const bool http_enabled = args.count("http-port") != 0;
  if (http_enabled) {
    http.Handle("/metrics", [&server] {
      net::HttpReply reply;
      reply.content_type = "text/plain; version=0.0.4; charset=utf-8";
      reply.body = net::PrometheusText(server.Telemetry());
      return reply;
    });
    http.Handle("/healthz", [] {
      net::HttpReply reply;
      reply.body = "ok\n";
      return reply;
    });
    http.Handle("/readyz", [&server, &draining] {
      net::HttpReply reply;
      if (draining.load(std::memory_order_acquire) ||
          !server.Telemetry().ready) {
        reply.status = 503;
        reply.body = "draining\n";
      } else {
        reply.body = "ready\n";
      }
      return reply;
    });
    net::HttpOptions http_options;
    http_options.port = static_cast<std::uint16_t>(
        std::atoi(GetArg(args, "http-port", "0").c_str()));
    Status http_started = http.Start(http_options);
    if (!http_started.ok()) {
      WriteMetricsJson(metrics_path, server);
      return Fail(http_started);
    }
    const std::string http_port_file = GetArg(args, "http-port-file", "");
    if (!http_port_file.empty()) {
      std::ofstream out(http_port_file, std::ios::trunc);
      out << http.port() << "\n";
      if (!out.good()) {
        WriteMetricsJson(metrics_path, server);
        return Fail(Status::Internal("cannot write http port file: " +
                                     http_port_file));
      }
    }
    std::printf("telemetry on 127.0.0.1:%u\n",
                static_cast<unsigned>(http.port()));
    std::fflush(stdout);
  }

  // Block until SIGTERM/SIGINT trips the process latch; each SIGHUP wake
  // in between queues an engine reload. The handlers themselves only
  // store a flag / bump a counter and write the shared self-pipe;
  // everything below runs in normal code.
  while (!ShutdownRequested()) {
    pollfd pfd;
    pfd.fd = ShutdownWakeFd();
    pfd.events = POLLIN;
    pfd.revents = 0;
    if (::poll(&pfd, 1, -1) < 0 && errno != EINTR) {
      WriteMetricsJson(metrics_path, server);
      return Fail(Status::Internal("poll on shutdown pipe failed"));
    }
    if ((pfd.revents & POLLIN) != 0) {
      // Drain the pipe so repeated SIGHUPs cannot leave it permanently
      // readable and spin this loop; the atomic latch/counter, not the
      // pipe contents, carry the actual requests.
      char buf[16];
      while (::read(pfd.fd, buf, sizeof(buf)) > 0) {
      }
    }
    while (ConsumeReloadRequest()) {
      LogInfo("serve: SIGHUP received, reloading " + model);
      Status queued = server.RequestReload("");
      if (!queued.ok()) {
        LogWarn("serve: reload not queued: " + queued.ToString());
      }
    }
  }
  // Not-ready first, drain second: a load balancer polling /readyz gets
  // the grace window to route traffic away before requests start meeting
  // a closed listener.
  draining.store(true, std::memory_order_release);
  const double drain_grace_ms =
      std::atof(GetArg(args, "drain-grace-ms", "0").c_str());
  if (http_enabled && drain_grace_ms > 0.0) {
    LogInfo("serve: shutdown requested, readyz now 503, grace " +
            std::to_string(drain_grace_ms) + " ms");
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(drain_grace_ms));
  }
  LogInfo("serve: shutdown requested, draining");
  server.RequestShutdown();
  Status drained = server.Wait();
  // The sidecar outlives the drain (operators can watch it complete) and
  // goes down only once the last frame reply is written.
  http.Shutdown();

  const net::ServeStats stats = server.stats();
  LogInfo("serve: drained (" + std::to_string(stats.requests_received) +
          " requests, " + std::to_string(stats.requests_ok) + " ok, " +
          std::to_string(stats.requests_shed) + " shed, " +
          std::to_string(stats.drained_in_flight) +
          " answered from the queue during drain, " +
          std::to_string(stats.reloads_ok) + " reloads ok, " +
          std::to_string(stats.reloads_failed) + " reloads rejected, " +
          std::to_string(stats.stats_scrapes) + " telemetry scrapes)");

  WriteMetricsJson(metrics_path, server);
  if (!drained.ok()) return Fail(drained);
  return 0;
}

}  // namespace
}  // namespace adarts::serve

int main(int argc, char** argv) { return adarts::serve::Main(argc, argv); }
