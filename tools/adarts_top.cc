// adarts_top — live terminal dashboard for a running adarts_serve
// (DESIGN.md §14).
//
//   adarts_top (--port N | --port-file FILE) [--interval-ms N]
//              [--iterations N] [--once] [--plain]
//
// Polls the daemon's kStats telemetry frame on one long-lived connection
// and renders a refreshing one-screen view: request rate and shed rate
// (computed from counter deltas between polls), windowed p50/p90/p99
// latency (the last-minute view, not lifetime averages), queue pressure,
// engine version, uptime, and the tail of the hot-swap log.
//
//   --interval-ms   poll period (default 1000)
//   --iterations    stop after N polls (default 0 = run until killed)
//   --once          poll once, print, exit (implies --plain); the
//                   scriptable mode CI uses
//   --plain         append screens instead of ANSI-redrawing in place
//
// Exit status: 0 on a clean run, 1 when the daemon cannot be reached or a
// scrape goes unanswered.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "net/protocol.h"
#include "net/socket.h"

namespace adarts::top {
namespace {

using Args = std::map<std::string, std::string>;

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) == 0) key = key.substr(2);
    // Boolean flags take no operand.
    if (key == "once" || key == "plain") {
      args[key] = "1";
      continue;
    }
    if (i + 1 >= argc) break;
    args[key] = argv[++i];
  }
  return args;
}

std::string GetArg(const Args& args, const std::string& key,
                   const std::string& fallback) {
  const auto it = args.find(key);
  return it != args.end() ? it->second : fallback;
}

int Usage() {
  std::fprintf(stderr,
               "usage: adarts_top (--port N | --port-file FILE)\n"
               "                  [--interval-ms N] [--iterations N]\n"
               "                  [--once] [--plain]\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

double Num(const json::JsonValue& v, const char* key) {
  return v.NumberOr(key, 0.0);
}

/// `object.member` drill-down that tolerates absence (renders as zeros
/// rather than crashing on an older daemon's snapshot).
const json::JsonValue* Member(const json::JsonValue& v, const char* key) {
  return v.Find(key);
}

std::string FormatMs(double ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", ns / 1e6);
  return buf;
}

struct PrevCounters {
  bool valid = false;
  double requests_received = 0.0;
  double requests_shed = 0.0;
  std::chrono::steady_clock::time_point at;
};

void Render(const json::JsonValue& snap, PrevCounters* prev, bool plain) {
  const auto now = std::chrono::steady_clock::now();
  const json::JsonValue* stats = Member(snap, "stats");
  const double received = stats ? Num(*stats, "requests_received") : 0.0;
  const double shed = stats ? Num(*stats, "requests_shed") : 0.0;

  double qps = 0.0;
  double shed_ps = 0.0;
  if (prev->valid) {
    const double dt =
        std::chrono::duration<double>(now - prev->at).count();
    if (dt > 0.0) {
      qps = (received - prev->requests_received) / dt;
      shed_ps = (shed - prev->requests_shed) / dt;
    }
  }
  prev->valid = true;
  prev->requests_received = received;
  prev->requests_shed = shed;
  prev->at = now;

  if (!plain) {
    std::printf("\x1b[2J\x1b[H");  // clear screen, cursor home
  }
  const json::JsonValue* ready = snap.Find("ready");
  std::printf("adarts_top — engine v%.0f, up %.0f s, %s\n",
              Num(snap, "engine_version"), Num(snap, "uptime_seconds"),
              (ready != nullptr && ready->boolean) ? "ready"
                                                   : "NOT READY (draining)");
  std::printf("queue %.0f/%.0f\n", Num(snap, "queue_depth"),
              Num(snap, "queue_capacity"));
  std::printf("rate  %8.1f req/s   shed %8.1f req/s\n", qps, shed_ps);
  if (stats != nullptr) {
    std::printf(
        "total %8.0f req     ok %8.0f   shed %6.0f   err %6.0f   "
        "scrapes %.0f\n",
        received, Num(*stats, "requests_ok"), shed,
        Num(*stats, "requests_error"), Num(*stats, "stats_scrapes"));
  }
  const json::JsonValue* window = Member(snap, "window_latency");
  if (window != nullptr) {
    const json::JsonValue* hist = Member(*window, "histogram");
    if (hist != nullptr) {
      std::printf(
          "last %.0fs latency   p50 %s ms   p90 %s ms   p99 %s ms   "
          "(%.0f samples)\n",
          Num(*window, "covered_seconds"),
          FormatMs(Num(*hist, "p50_ns")).c_str(),
          FormatMs(Num(*hist, "p90_ns")).c_str(),
          FormatMs(Num(*hist, "p99_ns")).c_str(), Num(*hist, "count"));
    }
  }
  std::printf("swaps %.0f\n", Num(snap, "swap_count"));
  const json::JsonValue* tail = Member(snap, "swap_tail");
  if (tail != nullptr && tail->is_array()) {
    for (const json::JsonValue& record : tail->array) {
      const json::JsonValue* success = record.Find("success");
      const json::JsonValue* path = record.Find("path");
      const json::JsonValue* detail = record.Find("detail");
      std::printf("  v%.0f %-8s %s%s%s\n", Num(record, "engine_version"),
                  (success != nullptr && success->boolean) ? "LIVE"
                                                           : "rejected",
                  path != nullptr ? path->str.c_str() : "",
                  (detail != nullptr && !detail->str.empty()) ? " — " : "",
                  detail != nullptr ? detail->str.c_str() : "");
    }
  }
  std::fflush(stdout);
}

int Main(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);

  int port = std::atoi(GetArg(args, "port", "0").c_str());
  const std::string port_file = GetArg(args, "port-file", "");
  if (port == 0 && !port_file.empty()) {
    std::ifstream in(port_file);
    in >> port;
  }
  if (port <= 0 || port > 65535) return Usage();

  const bool once = args.count("once") != 0;
  const bool plain = once || args.count("plain") != 0;
  const double interval_ms =
      std::atof(GetArg(args, "interval-ms", "1000").c_str());
  const std::uint64_t iterations =
      once ? 1
           : static_cast<std::uint64_t>(
                 std::atoll(GetArg(args, "iterations", "0").c_str()));

  // A SIGPIPE from a daemon that exits mid-poll must not kill the
  // dashboard; the write error is handled below.
  std::signal(SIGPIPE, SIG_IGN);

  auto sock = net::ConnectTcp("127.0.0.1", static_cast<std::uint16_t>(port));
  if (!sock.ok()) return Fail(sock.status());
  Status timeout_set = sock->SetReceiveTimeout(10.0);
  if (!timeout_set.ok()) return Fail(timeout_set);

  PrevCounters prev;
  for (std::uint64_t i = 0; iterations == 0 || i < iterations; ++i) {
    if (i > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(interval_ms));
    }
    net::Request request;
    request.type = net::MessageType::kStats;
    request.id = i;
    Status written = WriteFrame(*sock, EncodeRequest(request));
    if (!written.ok()) return Fail(written);
    auto frame = ReadFrame(*sock);
    if (!frame.ok()) return Fail(frame.status());
    auto response = net::DecodeResponse(*frame);
    if (!response.ok()) return Fail(response.status());
    if (response->type != net::MessageType::kStats || response->id != i) {
      return Fail(Status::Internal("mismatched stats reply"));
    }
    auto snap = json::ParseJson(response->text);
    if (!snap.ok()) return Fail(snap.status());
    Render(*snap, &prev, plain);
  }
  return 0;
}

}  // namespace
}  // namespace adarts::top

int main(int argc, char** argv) { return adarts::top::Main(argc, argv); }
