// bench_compare — the efficacy-regression gate over `BenchJsonWriter`
// JSON-lines records (GCG check/cmpres style: diff two result runs, flag
// every regression, exit non-zero so CI goes red).
//
//   bench_compare baseline.json current.json [--rel-tol 0.10] [--abs-tol X]
//                 [--check-perf] [--perf-rel-tol 0.25]
//
// Pairs records by (bench, params), then checks: checksum drift (either
// direction — the digest changing means the results changed), metric
// regressions with per-name direction (win_rate falling and rmse rising are
// both red), records or metrics that disappeared, and — with --check-perf —
// inflated wall seconds / stage spans / latency-histogram percentiles
// (e.g. recommend.latency p99). Exit codes: 0 clean, 1 regression,
// 2 usage/unreadable/malformed input. See DESIGN.md §11.

#include <vector>

#include "tools/bench_compare_lib.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return adarts::tools::RunBenchCompare(args, nullptr);
}
