#include "tools/bench_compare_lib.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/json.h"

namespace adarts::tools {
namespace {

using json::JsonValue;

std::string FmtValue(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string FmtDeltaPercent(double baseline, double current) {
  if (std::abs(baseline) < 1e-12) return "n/a";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%",
                100.0 * (current - baseline) / std::abs(baseline));
  return buf;
}

Status LineError(std::size_t line_number, const std::string& what) {
  return Status::InvalidArgument("bench records line " +
                                 std::to_string(line_number) + ": " + what);
}

/// Flattens the record's perf surface: wall seconds, stage spans, and the
/// latency-histogram percentiles (the `recommend.latency` p99 gate).
void ExtractPerf(const JsonValue& record, BenchRecord* out) {
  out->perf["seconds"] = out->seconds;
  const JsonValue* stages = record.Find("stages");
  if (stages == nullptr || !stages->is_object()) return;
  const JsonValue* spans = stages->Find("spans_seconds");
  if (spans != nullptr && spans->is_object()) {
    for (const auto& [name, value] : spans->object) {
      if (value.is_number()) out->perf["spans." + name] = value.number;
    }
  }
  const JsonValue* histograms = stages->Find("histograms");
  if (histograms != nullptr && histograms->is_object()) {
    for (const auto& [name, snapshot] : histograms->object) {
      if (!snapshot.is_object()) continue;
      for (const char* pct : {"p50_ns", "p90_ns", "p99_ns"}) {
        const JsonValue* v = snapshot.Find(pct);
        if (v != nullptr && v->is_number()) {
          out->perf["hist." + name + "." + pct] = v->number;
        }
      }
    }
  }
}

Result<BenchRecord> RecordFromJson(const JsonValue& value,
                                   std::size_t line_number) {
  if (!value.is_object()) {
    return LineError(line_number, "record is not a JSON object");
  }
  const JsonValue* bench = value.Find("bench");
  if (bench == nullptr || !bench->is_string()) {
    return LineError(line_number, "missing string field 'bench'");
  }
  const JsonValue* params = value.Find("params");
  if (params == nullptr || !params->is_object()) {
    return LineError(line_number, "missing object field 'params'");
  }
  const JsonValue* seconds = value.Find("seconds");
  const JsonValue* checksum = value.Find("checksum");
  if (seconds == nullptr || !seconds->is_number() || checksum == nullptr ||
      !checksum->is_number()) {
    return LineError(line_number, "missing number fields 'seconds'/'checksum'");
  }
  BenchRecord record;
  record.bench = bench->str;
  for (const auto& [key, v] : params->object) {
    if (!v.is_string()) {
      return LineError(line_number, "param '" + key + "' is not a string");
    }
    record.params.emplace_back(key, v.str);
  }
  std::sort(record.params.begin(), record.params.end());
  record.seconds = seconds->number;
  record.checksum = checksum->number;
  const JsonValue* metrics = value.Find("metrics");
  if (metrics != nullptr) {
    if (!metrics->is_object()) {
      return LineError(line_number, "'metrics' is not an object");
    }
    for (const auto& [key, v] : metrics->object) {
      if (!v.is_number()) {
        return LineError(line_number, "metric '" + key + "' is not a number");
      }
      record.metrics[key] = v.number;
    }
  }
  ExtractPerf(value, &record);
  return record;
}

bool ExceedsTolerance(double baseline, double current, double rel_tol,
                      double abs_tol) {
  const double delta = std::abs(current - baseline);
  return delta > abs_tol + rel_tol * std::abs(baseline);
}

const char* KindLabel(Finding::Kind kind) {
  switch (kind) {
    case Finding::Kind::kChecksumDrift:
      return "DRIFT";
    case Finding::Kind::kMetricRegression:
      return "REGRESSION";
    case Finding::Kind::kMetricImprovement:
      return "IMPROVEMENT";
    case Finding::Kind::kPerfRegression:
      return "PERF-REGRESSION";
    case Finding::Kind::kMissingRecord:
      return "MISSING";
    case Finding::Kind::kMissingMetric:
      return "MISSING-METRIC";
    case Finding::Kind::kAddedRecord:
      return "ADDED";
  }
  return "?";
}

}  // namespace

std::string BenchRecord::Key() const {
  std::string key = bench + "{";
  bool first = true;
  for (const auto& [k, v] : params) {
    if (!first) key += ',';
    first = false;
    key += k + "=" + v;
  }
  key += "}";
  return key;
}

Result<std::vector<BenchRecord>> ParseBenchRecords(const std::string& text) {
  std::vector<BenchRecord> records;
  std::map<std::string, std::size_t> index_by_key;
  std::istringstream lines(text);
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(lines, line)) {
    ++line_number;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    auto parsed = json::ParseJson(line);
    if (!parsed.ok()) {
      return LineError(line_number, parsed.status().message());
    }
    ADARTS_ASSIGN_OR_RETURN(BenchRecord record,
                            RecordFromJson(*parsed, line_number));
    const std::string key = record.Key();
    const auto it = index_by_key.find(key);
    if (it != index_by_key.end()) {
      records[it->second] = std::move(record);  // appended re-run: last wins
    } else {
      index_by_key[key] = records.size();
      records.push_back(std::move(record));
    }
  }
  return records;
}

bool MetricHigherIsBetter(const std::string& name) {
  static const char* const kHigherBetter[] = {
      "win_rate", "accuracy", "precision", "recall",  "f1",
      "mrr",      "throughput", "qps",     "agreement", "coverage",
      "speedup",
  };
  for (const char* token : kHigherBetter) {
    if (name.find(token) != std::string::npos) return true;
  }
  return false;
}

bool Finding::fails() const {
  switch (kind) {
    case Kind::kChecksumDrift:
    case Kind::kMetricRegression:
    case Kind::kPerfRegression:
    case Kind::kMissingRecord:
    case Kind::kMissingMetric:
      return true;
    case Kind::kMetricImprovement:
    case Kind::kAddedRecord:
      return false;
  }
  return false;
}

std::string Finding::ToString() const {
  std::string out = KindLabel(kind);
  out += " ";
  out += key;
  if (!field.empty()) {
    out += " ";
    out += field;
  }
  switch (kind) {
    case Kind::kMissingRecord:
      out += " (in baseline, absent from current run)";
      break;
    case Kind::kMissingMetric:
      out += " (metric in baseline, absent from current record)";
      break;
    case Kind::kAddedRecord:
      out += " (new record, not gated)";
      break;
    default:
      out += ": " + FmtValue(baseline) + " -> " + FmtValue(current) + " (" +
             FmtDeltaPercent(baseline, current) + ")";
  }
  return out;
}

bool CompareReport::failed() const {
  return std::any_of(findings.begin(), findings.end(),
                     [](const Finding& f) { return f.fails(); });
}

std::string CompareReport::ToString() const {
  std::string out = "bench_compare: " + std::to_string(compared_records) +
                    " records paired, " + std::to_string(compared_values) +
                    " values checked\n";
  std::size_t failures = 0;
  for (const Finding& finding : findings) {
    out += finding.ToString() + "\n";
    if (finding.fails()) ++failures;
  }
  out += failures == 0
             ? "result: OK\n"
             : "result: FAIL (" + std::to_string(failures) +
                   " failing findings)\n";
  return out;
}

CompareReport CompareBenchRecords(const std::vector<BenchRecord>& baseline,
                                  const std::vector<BenchRecord>& current,
                                  const CompareOptions& options) {
  CompareReport report;
  std::map<std::string, const BenchRecord*> current_by_key;
  for (const BenchRecord& record : current) {
    current_by_key[record.Key()] = &record;
  }
  std::map<std::string, const BenchRecord*> baseline_by_key;
  for (const BenchRecord& record : baseline) {
    baseline_by_key[record.Key()] = &record;
  }

  for (const BenchRecord& old : baseline) {
    const std::string key = old.Key();
    const auto it = current_by_key.find(key);
    if (it == current_by_key.end()) {
      report.findings.push_back({Finding::Kind::kMissingRecord, key, "", 0.0,
                                 0.0});
      continue;
    }
    const BenchRecord& now = *it->second;
    ++report.compared_records;

    // The checksum is the bench's one result digest: movement in either
    // direction beyond tolerance means the results changed — red either
    // way, and an intentional change means re-baselining.
    ++report.compared_values;
    if (ExceedsTolerance(old.checksum, now.checksum, options.rel_tol,
                         options.abs_tol)) {
      report.findings.push_back({Finding::Kind::kChecksumDrift, key,
                                 "checksum", old.checksum, now.checksum});
    }

    for (const auto& [name, old_value] : old.metrics) {
      const auto metric = now.metrics.find(name);
      if (metric == now.metrics.end()) {
        report.findings.push_back({Finding::Kind::kMissingMetric, key,
                                   "metrics." + name, old_value, 0.0});
        continue;
      }
      ++report.compared_values;
      const double new_value = metric->second;
      if (!ExceedsTolerance(old_value, new_value, options.rel_tol,
                            options.abs_tol)) {
        continue;
      }
      const bool higher_better = MetricHigherIsBetter(name);
      const bool got_worse =
          higher_better ? new_value < old_value : new_value > old_value;
      report.findings.push_back({got_worse
                                     ? Finding::Kind::kMetricRegression
                                     : Finding::Kind::kMetricImprovement,
                                 key, "metrics." + name, old_value,
                                 new_value});
    }

    if (options.check_perf) {
      for (const auto& [name, old_value] : old.perf) {
        const auto perf = now.perf.find(name);
        if (perf == now.perf.end()) continue;  // perf surface may shrink
        ++report.compared_values;
        const double new_value = perf->second;
        // Perf numbers are lower-better; only inflation is a regression.
        if (new_value > old_value &&
            ExceedsTolerance(old_value, new_value, options.perf_rel_tol,
                             options.abs_tol)) {
          report.findings.push_back({Finding::Kind::kPerfRegression, key,
                                     "perf." + name, old_value, new_value});
        }
      }
    }
  }

  for (const BenchRecord& record : current) {
    if (baseline_by_key.find(record.Key()) == baseline_by_key.end()) {
      report.findings.push_back({Finding::Kind::kAddedRecord, record.Key(),
                                 "", 0.0, 0.0});
    }
  }
  return report;
}

namespace {

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

void Emit(std::string* output, const std::string& text) {
  if (output != nullptr) {
    *output += text;
  } else {
    std::fputs(text.c_str(), stdout);
  }
}

constexpr char kUsage[] =
    "usage: bench_compare <baseline.json> <current.json>\n"
    "                     [--rel-tol X] [--abs-tol X]\n"
    "                     [--check-perf] [--perf-rel-tol X]\n"
    "Diffs two BenchJsonWriter JSON-lines files and exits non-zero when the\n"
    "current run regressed: checksum drift, direction-aware metric\n"
    "regressions (win_rate down, rmse up), missing records, and — with\n"
    "--check-perf — inflated seconds/spans/latency percentiles.\n";

}  // namespace

int RunBenchCompare(const std::vector<std::string>& args,
                    std::string* output) {
  CompareOptions options;
  std::vector<std::string> paths;
  bool bad_value = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const auto value_of = [&](const char* flag) -> const char* {
      if (args[i] == flag && i + 1 < args.size()) return args[++i].c_str();
      return nullptr;
    };
    // A tolerance must parse fully as a non-negative number; `--rel-tol
    // bogus` silently meaning zero would make the gate strict by accident.
    const auto parse_tol = [&](const char* v, double* out) {
      char* end = nullptr;
      const double parsed = std::strtod(v, &end);
      if (end == v || *end != '\0' || !(parsed >= 0.0)) {
        Emit(output, std::string("bad tolerance value: ") + v + "\n" + kUsage);
        bad_value = true;
        return;
      }
      *out = parsed;
    };
    if (args[i] == "--check-perf") {
      options.check_perf = true;
    } else if (const char* v = value_of("--rel-tol")) {
      parse_tol(v, &options.rel_tol);
    } else if (const char* v = value_of("--abs-tol")) {
      parse_tol(v, &options.abs_tol);
    } else if (const char* v = value_of("--perf-rel-tol")) {
      parse_tol(v, &options.perf_rel_tol);
    } else if (!args[i].empty() && args[i][0] == '-') {
      Emit(output, std::string("unknown flag ") + args[i] + "\n" + kUsage);
      return 2;
    } else {
      paths.push_back(args[i]);
    }
  }
  if (bad_value) return 2;
  if (paths.size() != 2) {
    Emit(output, kUsage);
    return 2;
  }

  std::vector<std::vector<BenchRecord>> sides;
  for (const std::string& path : paths) {
    auto text = ReadFile(path);
    if (!text.ok()) {
      Emit(output, text.status().ToString() + "\n");
      return 2;
    }
    auto records = ParseBenchRecords(*text);
    if (!records.ok()) {
      Emit(output, path + ": " + records.status().ToString() + "\n");
      return 2;
    }
    sides.push_back(std::move(*records));
  }

  const CompareReport report =
      CompareBenchRecords(sides[0], sides[1], options);
  Emit(output, report.ToString());
  return report.failed() ? 1 : 0;
}

}  // namespace adarts::tools
