#ifndef ADARTS_TOOLS_BENCH_COMPARE_LIB_H_
#define ADARTS_TOOLS_BENCH_COMPARE_LIB_H_

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace adarts::tools {

/// One parsed line of a `BenchJsonWriter` JSON-lines file
/// (bench/bench_util.h): the record identity (bench name + params), the
/// result digests (checksum + named metrics) and the flattened performance
/// numbers (wall seconds, stage spans, latency-histogram percentiles).
struct BenchRecord {
  std::string bench;
  std::vector<std::pair<std::string, std::string>> params;  ///< sorted by key
  double seconds = 0.0;
  double checksum = 0.0;
  /// Named result metrics from the record's `metrics` object.
  std::map<std::string, double> metrics;
  /// Performance numbers: "seconds", "spans.<name>", and
  /// "hist.<name>.p50_ns/p90_ns/p99_ns" flattened out of `stages`.
  std::map<std::string, double> perf;

  /// Stable identity used to pair baseline and current records:
  /// `bench{k=v,...}` with params in key order.
  std::string Key() const;
};

/// Parses a whole JSON-lines file of bench records. Empty lines are
/// skipped; a line that is not valid JSON or not record-shaped fails with
/// InvalidArgument naming the line number (hostile input never crashes).
/// When the same record key appears on several lines — appended re-runs —
/// the last occurrence wins, matching "latest run" semantics.
Result<std::vector<BenchRecord>> ParseBenchRecords(const std::string& text);

struct CompareOptions {
  /// Relative tolerance on checksum and metric values.
  double rel_tol = 0.10;
  /// Absolute floor below which differences never count (FP noise).
  double abs_tol = 1e-9;
  /// Also gate the performance numbers (seconds, spans, histogram
  /// percentiles). Off by default: timings are machine-dependent, results
  /// are not.
  bool check_perf = false;
  /// Relative tolerance for the performance numbers (generous by default —
  /// CI machines are noisy).
  double perf_rel_tol = 0.25;
};

/// One observation of the diff. Only some kinds fail the comparison:
/// regressions, drift, and baseline records/metrics that disappeared.
/// Improvements and newly-added records are reported for the log but are
/// never red — adding a bench must not break the gate.
struct Finding {
  enum class Kind {
    kChecksumDrift,      ///< checksum moved either way beyond tolerance
    kMetricRegression,   ///< a metric got worse (direction-aware)
    kMetricImprovement,  ///< a metric got better beyond tolerance (info)
    kPerfRegression,     ///< a perf number inflated (with check_perf)
    kMissingRecord,      ///< baseline record absent from current run
    kMissingMetric,      ///< baseline metric absent from current record
    kAddedRecord,        ///< current-only record (info)
  };
  Kind kind;
  std::string key;    ///< record key
  std::string field;  ///< metric/perf name; empty for record-level findings
  double baseline = 0.0;
  double current = 0.0;

  bool fails() const;
  std::string ToString() const;
};

struct CompareReport {
  std::vector<Finding> findings;
  std::size_t compared_records = 0;
  std::size_t compared_values = 0;

  bool failed() const;
  /// Full human-readable report: one line per finding plus the verdict.
  std::string ToString() const;
};

/// Direction convention for metric names: quality scores (win_rate,
/// accuracy, f1, mrr, throughput...) are higher-better, everything else
/// (RMSE, latency, failure counts) lower-better.
bool MetricHigherIsBetter(const std::string& name);

/// Diffs `current` against `baseline` under `options`.
CompareReport CompareBenchRecords(const std::vector<BenchRecord>& baseline,
                                  const std::vector<BenchRecord>& current,
                                  const CompareOptions& options);

/// The whole CLI (shared with tests): `args` is argv[1..]. Appends the
/// report to `*output` when non-null, else prints to stdout/stderr.
/// Returns 0 (no regressions), 1 (regressions / missing records), or
/// 2 (usage, unreadable file, or malformed JSON).
int RunBenchCompare(const std::vector<std::string>& args, std::string* output);

}  // namespace adarts::tools

#endif  // ADARTS_TOOLS_BENCH_COMPARE_LIB_H_
