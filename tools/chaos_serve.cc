// chaos_serve — serve-path chaos harness (DESIGN.md §12).
//
//   chaos_serve [--qps F] [--swaps N] [--chaos-iters N] [--seed N]
//               [--dir PATH] [--keep 1]
//
// Boots an in-process `net::Server` on a freshly trained engine and runs
// six adversarial phases against it, under sustained loadgen traffic:
//
//   1. swap-storm    — hot-swap the engine repeatedly (kReload frames with
//                      strictly increasing versions) while clients hammer
//                      recommend/ping at >= 200 QPS. Every reply must carry
//                      exactly one published engine version and no request
//                      may be lost.
//   2. bad-reloads   — feed the reload pipeline a corrupted, a torn, a
//                      future-format and a stale-version snapshot. Every one
//                      must be rejected with a precise error while the old
//                      engine keeps serving, uninterrupted.
//   3. conn-chaos    — kill connections mid-frame, send garbage, dribble a
//                      frame byte-by-byte, slam into the connection cap.
//                      The server must refuse politely and never crash.
//   4. failpoints    — arm every net.* failpoint site in turn (accept,
//                      mid-frame read/write, queue push, reload verify/swap)
//                      and prove the server degrades cleanly and recovers
//                      once the site disarms.
//   5. scrape-storm  — concurrent kStats telemetry scrapes from several
//                      clients while an idempotent reload storm re-publishes
//                      the live snapshot (DESIGN.md §14). Every scrape must
//                      be answered with parseable JSON, no reply may be
//                      lost, and each client's successive scrapes must
//                      observe monotone request counts.
//   6. drain         — graceful shutdown under live traffic: every admitted
//                      request is answered, Wait() returns OK.
//
// Exit code 0 iff every phase's assertions hold. Any violation prints
// `CHAOS FAIL: ...` and exits 1 immediately — the harness is a CI gate
// (.github/workflows/ci.yml, chaos-serve job), not a benchmark.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "adarts/adarts.h"
#include "common/failpoint.h"
#include "common/json.h"
#include "common/rng.h"
#include "data/generators.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/socket.h"
#include "ts/time_series.h"

namespace adarts::chaos {
namespace {

using Args = std::map<std::string, std::string>;

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    if (key.rfind("--", 0) == 0) key = key.substr(2);
    args[key] = argv[i + 1];
  }
  return args;
}

std::string GetArg(const Args& args, const std::string& key,
                   const std::string& fallback) {
  const auto it = args.find(key);
  return it != args.end() ? it->second : fallback;
}

/// Hard assertion: chaos invariants are never "mostly" true.
void Check(bool ok, const std::string& what) {
  if (!ok) {
    std::fprintf(stderr, "CHAOS FAIL: %s\n", what.c_str());
    std::exit(1);
  }
}

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// ---------------------------------------------------------------------------
// Engine + snapshot fixtures
// ---------------------------------------------------------------------------

TrainOptions FastOptions() {
  TrainOptions opts;
  opts.labeling.algorithms = {
      impute::Algorithm::kCdRec, impute::Algorithm::kSvdImpute,
      impute::Algorithm::kTkcm, impute::Algorithm::kLinearInterp,
      impute::Algorithm::kMeanImpute};
  opts.race.num_seed_pipelines = 12;
  opts.race.num_partial_sets = 2;
  opts.race.num_folds = 2;
  opts.features.landmarks = 16;
  return opts;
}

std::vector<ts::TimeSeries> SmallCorpus() {
  data::GeneratorOptions gopts;
  gopts.num_series = 12;
  gopts.length = 160;
  std::vector<ts::TimeSeries> corpus;
  for (data::Category c : {data::Category::kClimate, data::Category::kMotion}) {
    for (auto& s : data::GenerateCategory(c, gopts)) {
      corpus.push_back(std::move(s));
    }
  }
  return corpus;
}

ts::TimeSeries MakeFaulty(std::uint64_t seed) {
  Rng rng(seed);
  la::Vector values(160);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] =
        std::sin(0.15 * static_cast<double>(i)) + 0.05 * rng.Uniform();
  }
  ts::TimeSeries series(std::move(values));
  series.set_name("chaos");
  for (std::size_t i = 40; i < 52; ++i) {
    series.SetMissing(i, true);
  }
  return series;
}

std::string ReadAllBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  Check(in.good(), "cannot read snapshot fixture " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

void WriteAllBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  Check(out.good(), "cannot write snapshot fixture " + path);
}

/// Byte offset of the payload: the V2 bundle is `magic\nheader ...\n` then
/// payload, so the payload starts after the second newline.
std::size_t PayloadOffset(const std::string& bytes) {
  const std::size_t first = bytes.find('\n');
  Check(first != std::string::npos, "snapshot fixture has no magic line");
  const std::size_t second = bytes.find('\n', first + 1);
  Check(second != std::string::npos, "snapshot fixture has no header line");
  return second + 1;
}

/// The saved-up-front snapshot fixtures every phase draws from. All files
/// are written before the server starts so no phase mutates the engine the
/// server is serving from.
struct Fixtures {
  std::string dir;
  std::vector<std::string> swap_paths;  ///< versions base+1 .. base+swaps
  std::vector<std::uint64_t> swap_versions;
  std::string good;        ///< highest version; reloads of it are idempotent
  std::string corrupted;   ///< one payload byte flipped — checksum mismatch
  std::string torn;        ///< truncated mid-payload
  std::string future;      ///< format_version from the future
  std::string stale;       ///< engine_version below the active one
  std::uint64_t base_version = 0;
  std::uint64_t top_version = 0;
};

Fixtures BuildFixtures(Adarts* engine, const std::string& dir,
                       std::uint64_t base_version, std::size_t swaps) {
  Fixtures fx;
  fx.dir = dir;
  fx.base_version = base_version;
  for (std::size_t k = 1; k <= swaps; ++k) {
    const std::uint64_t version = base_version + k;
    const std::string path = dir + "/swap_" + std::to_string(version) +
                             ".adarts";
    engine->set_engine_version(version);
    Status saved = engine->Save(path);
    Check(saved.ok(), "save swap fixture: " + saved.ToString());
    fx.swap_paths.push_back(path);
    fx.swap_versions.push_back(version);
  }
  fx.top_version = base_version + swaps;
  fx.good = fx.swap_paths.back();

  const std::string bytes = ReadAllBytes(fx.good);
  const std::size_t payload = PayloadOffset(bytes);
  Check(bytes.size() > payload + 16, "snapshot fixture implausibly small");

  std::string flipped = bytes;
  flipped[payload + (bytes.size() - payload) / 2] ^= 0x01;
  fx.corrupted = dir + "/corrupted.adarts";
  WriteAllBytes(fx.corrupted, flipped);

  fx.torn = dir + "/torn.adarts";
  WriteAllBytes(fx.torn, bytes.substr(0, bytes.size() - 7));

  const std::string tag = "\nheader 2 ";
  const std::size_t head = bytes.find(tag);
  Check(head != std::string::npos, "snapshot fixture missing V2 header tag");
  std::string skewed = bytes;
  skewed.replace(head, tag.size(), "\nheader 9 ");
  fx.future = dir + "/future.adarts";
  WriteAllBytes(fx.future, skewed);

  engine->set_engine_version(1);
  fx.stale = dir + "/stale.adarts";
  Status saved = engine->Save(fx.stale);
  Check(saved.ok(), "save stale fixture: " + saved.ToString());

  // Leave the in-memory engine at the version the server will serve first.
  engine->set_engine_version(base_version);
  return fx;
}

// ---------------------------------------------------------------------------
// Client-side traffic
// ---------------------------------------------------------------------------

net::Request MakeTrafficRequest(std::uint64_t id, const ts::TimeSeries& faulty,
                                bool recommend) {
  net::Request request;
  request.id = id;
  if (recommend) {
    request.type = net::MessageType::kRecommend;
    request.series.push_back(faulty);
  } else {
    request.type = net::MessageType::kPing;
  }
  return request;
}

/// Paced closed-loop clients. In strict mode any socket error or lost reply
/// is a phase failure; in tolerant mode (chaos phases that deliberately
/// break connections) the client reconnects and keeps going.
class TrafficPool {
 public:
  TrafficPool(std::uint16_t port, std::size_t threads, double qps,
              bool tolerant)
      : port_(port), threads_(threads), qps_(qps), tolerant_(tolerant),
        faulty_(MakeFaulty(17)) {}

  void Start() {
    stop_.store(false, std::memory_order_release);
    for (std::size_t i = 0; i < threads_; ++i) {
      workers_.emplace_back([this, i] { Run(i); });
    }
  }

  void Stop() {
    stop_.store(true, std::memory_order_release);
    for (auto& t : workers_) {
      t.join();
    }
    workers_.clear();
  }

  std::uint64_t sent() const { return sent_.load(); }
  std::uint64_t replies() const { return replies_.load(); }
  std::uint64_t ok() const { return ok_.load(); }
  std::uint64_t shed() const { return shed_.load(); }
  std::uint64_t errors() const { return errors_.load(); }
  std::uint64_t reconnects() const { return reconnects_.load(); }

  std::set<std::uint64_t> versions() const {
    std::lock_guard<std::mutex> lock(mu_);
    return versions_;
  }

 private:
  void Run(std::size_t index) {
    const double interval_ns =
        1e9 * static_cast<double>(threads_) / qps_;
    net::Socket sock;
    std::uint64_t iteration = 0;
    const std::uint64_t start_ns = NowNs();
    while (!stop_.load(std::memory_order_acquire)) {
      const std::uint64_t due =
          start_ns +
          static_cast<std::uint64_t>(interval_ns *
                                     static_cast<double>(iteration));
      const std::uint64_t now = NowNs();
      if (due > now) {
        std::this_thread::sleep_for(std::chrono::nanoseconds(due - now));
      }
      ++iteration;
      if (!sock.valid()) {
        auto connected = net::ConnectTcp("127.0.0.1", port_);
        if (!connected.ok()) {
          Note(connected.status());
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
          continue;
        }
        sock = std::move(connected).value();
        (void)sock.SetReceiveTimeout(5.0);
      }
      const bool recommend = iteration % 4 == 0;
      const net::Request request = MakeTrafficRequest(
          index * 1000000 + iteration, faulty_, recommend);
      sent_.fetch_add(1, std::memory_order_relaxed);
      if (!net::WriteFrame(sock, net::EncodeRequest(request)).ok()) {
        Note(Status::Internal("write failed"));
        sock.Close();
        continue;
      }
      auto frame = net::ReadFrame(sock);
      if (!frame.ok()) {
        Note(frame.status());
        sock.Close();
        continue;
      }
      auto response = net::DecodeResponse(*frame);
      if (!response.ok()) {
        Note(response.status());
        sock.Close();
        continue;
      }
      replies_.fetch_add(1, std::memory_order_relaxed);
      if (response->ok()) {
        ok_.fetch_add(1, std::memory_order_relaxed);
      } else if (response->code == StatusCode::kUnavailable) {
        shed_.fetch_add(1, std::memory_order_relaxed);
      } else {
        errors_.fetch_add(1, std::memory_order_relaxed);
      }
      if (response->engine_version != 0) {
        std::lock_guard<std::mutex> lock(mu_);
        versions_.insert(response->engine_version);
      }
    }
  }

  /// A broken connection is an error in strict mode, a reconnect in
  /// tolerant mode.
  void Note(const Status& status) {
    (void)status;
    if (tolerant_) {
      reconnects_.fetch_add(1, std::memory_order_relaxed);
    } else {
      errors_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  const std::uint16_t port_;
  const std::size_t threads_;
  const double qps_;
  const bool tolerant_;
  const ts::TimeSeries faulty_;
  std::atomic<bool> stop_{false};
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> sent_{0}, replies_{0}, ok_{0}, shed_{0},
      errors_{0}, reconnects_{0};
  mutable std::mutex mu_;
  std::set<std::uint64_t> versions_;
};

/// One request/response round trip on a fresh connection.
Result<net::Response> Call(std::uint16_t port, const net::Request& request) {
  ADARTS_ASSIGN_OR_RETURN(net::Socket sock, net::ConnectTcp("127.0.0.1", port));
  ADARTS_RETURN_NOT_OK(sock.SetReceiveTimeout(10.0));
  ADARTS_RETURN_NOT_OK(net::WriteFrame(sock, net::EncodeRequest(request)));
  ADARTS_ASSIGN_OR_RETURN(std::string frame, net::ReadFrame(sock));
  return net::DecodeResponse(frame);
}

/// Sends a kReload frame and waits for the pipeline's verdict.
Result<net::Response> ReloadViaFrame(std::uint16_t port,
                                     const std::string& path,
                                     std::uint64_t id) {
  net::Request request;
  request.type = net::MessageType::kReload;
  request.id = id;
  request.text = path;
  return Call(port, request);
}

/// Retries a ping until it round-trips OK — the "is the server still alive
/// and serving" probe used after every deliberately destructive step.
void CheckServerAlive(std::uint16_t port, const std::string& context) {
  for (int attempt = 0; attempt < 50; ++attempt) {
    net::Request ping;
    ping.type = net::MessageType::kPing;
    ping.id = 999000 + static_cast<std::uint64_t>(attempt);
    auto response = Call(port, ping);
    if (response.ok() && response->ok()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  Check(false, "server unresponsive after " + context);
}

// ---------------------------------------------------------------------------
// Phases
// ---------------------------------------------------------------------------

/// Phase 1: hot-swap storm under strict traffic. Fires every prepared swap
/// through the kReload wire path while clients run at full rate; each swap's
/// reply must announce the new version and every traffic reply must carry a
/// version that was published at some point.
void PhaseSwapStorm(net::Server* server, const Fixtures& fx, double qps) {
  TrafficPool traffic(server->port(), 4, qps, /*tolerant=*/false);
  traffic.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  for (std::size_t k = 0; k < fx.swap_paths.size(); ++k) {
    auto response = ReloadViaFrame(server->port(), fx.swap_paths[k], 5000 + k);
    Check(response.ok(), "swap-storm: reload transport failed: " +
                             response.status().ToString());
    Check(response->ok(), "swap-storm: reload rejected: " + response->message);
    Check(response->engine_version == fx.swap_versions[k],
          "swap-storm: reload reply announces version " +
              std::to_string(response->engine_version) + ", expected " +
              std::to_string(fx.swap_versions[k]));
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  traffic.Stop();

  Check(traffic.errors() == 0,
        "swap-storm: " + std::to_string(traffic.errors()) +
            " client-visible errors during clean hot-swaps");
  Check(traffic.replies() == traffic.sent(),
        "swap-storm: " + std::to_string(traffic.sent() - traffic.replies()) +
            " requests lost (sent " + std::to_string(traffic.sent()) +
            ", answered " + std::to_string(traffic.replies()) + ")");
  std::set<std::uint64_t> published;
  published.insert(fx.base_version);
  for (std::uint64_t v : fx.swap_versions) published.insert(v);
  for (std::uint64_t v : traffic.versions()) {
    Check(published.count(v) == 1,
          "swap-storm: reply carried unpublished engine version " +
              std::to_string(v));
  }
  Check(traffic.versions().size() >= 2,
        "swap-storm: traffic only ever observed one engine version — the "
        "storm did not overlap the swaps");
  Check(server->registry().ActiveVersion() == fx.top_version,
        "swap-storm: active version is " +
            std::to_string(server->registry().ActiveVersion()) +
            ", expected " + std::to_string(fx.top_version));
  std::printf("phase swap-storm: %llu requests, %llu swaps, versions "
              "observed %zu, 0 errors\n",
              static_cast<unsigned long long>(traffic.sent()),
              static_cast<unsigned long long>(fx.swap_paths.size()),
              traffic.versions().size());
}

/// Phase 2: every malformed snapshot is rejected with the old engine left
/// serving — and traffic never notices.
void PhaseBadReloads(net::Server* server, const Fixtures& fx, double qps) {
  TrafficPool traffic(server->port(), 2, qps / 2, /*tolerant=*/false);
  traffic.Start();
  const std::uint64_t version_before = server->registry().ActiveVersion();
  const struct {
    const char* label;
    const std::string* path;
    const char* expect;
  } cases[] = {
      {"corrupted", &fx.corrupted, "checksum mismatch"},
      {"torn", &fx.torn, "torn snapshot"},
      {"future-format", &fx.future, "newer than this build"},
      {"stale-version", &fx.stale, "version regression"},
  };
  std::uint64_t id = 6000;
  for (const auto& c : cases) {
    auto response = ReloadViaFrame(server->port(), *c.path, id++);
    Check(response.ok(), std::string("bad-reloads: transport failed for ") +
                             c.label + ": " + response.status().ToString());
    Check(!response->ok(), std::string("bad-reloads: ") + c.label +
                               " snapshot was accepted");
    Check(response->message.find(c.expect) != std::string::npos,
          std::string("bad-reloads: ") + c.label +
              " rejection says \"" + response->message + "\", expected \"" +
              c.expect + "\"");
    Check(server->registry().ActiveVersion() == version_before,
          std::string("bad-reloads: ") + c.label +
              " reload moved the active version");
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  traffic.Stop();
  Check(traffic.errors() == 0, "bad-reloads: rejected reloads disturbed "
                               "traffic (" +
                                   std::to_string(traffic.errors()) +
                                   " errors)");
  Check(traffic.replies() == traffic.sent(),
        "bad-reloads: requests lost during rejected reloads");
  std::printf("phase bad-reloads: 4 malformed snapshots rejected, engine "
              "v%llu stayed live, %llu requests unharmed\n",
              static_cast<unsigned long long>(version_before),
              static_cast<unsigned long long>(traffic.sent()));
}

/// Phase 3: adversarial connections — mid-frame disconnects, garbage,
/// byte-dribbled frames, and a slam into the connection cap.
void PhaseConnChaos(net::Server* server, std::size_t iters, double qps,
                    std::size_t max_connections) {
  TrafficPool traffic(server->port(), 2, qps / 2, /*tolerant=*/true);
  traffic.Start();
  for (std::size_t i = 0; i < iters; ++i) {
    switch (i % 4) {
      case 0: {
        // Length prefix promising 256 bytes, connection dies after 10.
        auto sock = net::ConnectTcp("127.0.0.1", server->port());
        if (!sock.ok()) break;
        const std::uint32_t len = 256;
        char prefix[4];
        std::memcpy(prefix, &len, 4);
        (void)sock->WriteAll(prefix, 4);
        (void)sock->WriteAll("truncated!", 10);
        sock->Close();
        break;
      }
      case 1: {
        // A well-framed body of garbage: must get kInvalidArgument back.
        net::Request dummy;
        auto sock = net::ConnectTcp("127.0.0.1", server->port());
        if (!sock.ok()) break;
        (void)sock->SetReceiveTimeout(5.0);
        if (net::WriteFrame(*sock, "\x7f garbage body \x7f").ok()) {
          auto frame = net::ReadFrame(*sock);
          if (frame.ok()) {
            auto response = net::DecodeResponse(*frame);
            Check(response.ok() &&
                      response->code == StatusCode::kInvalidArgument,
                  "conn-chaos: garbage body did not yield kInvalidArgument");
          }
        }
        break;
      }
      case 2: {
        // Dribble a valid ping one byte at a time with pauses: slow-read
        // robustness. The reply must still arrive.
        net::Request ping;
        ping.type = net::MessageType::kPing;
        ping.id = 7000 + i;
        const std::string body = net::EncodeRequest(ping);
        auto sock = net::ConnectTcp("127.0.0.1", server->port());
        if (!sock.ok()) break;
        (void)sock->SetReceiveTimeout(5.0);
        const std::uint32_t len = static_cast<std::uint32_t>(body.size());
        char prefix[4];
        std::memcpy(prefix, &len, 4);
        bool sent = sock->WriteAll(prefix, 4).ok();
        for (std::size_t b = 0; sent && b < body.size(); ++b) {
          sent = sock->WriteAll(body.data() + b, 1).ok();
          if (b % 8 == 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
        }
        if (sent) {
          auto frame = net::ReadFrame(*sock);
          Check(frame.ok(), "conn-chaos: dribbled ping got no reply: " +
                                frame.status().ToString());
          auto response = net::DecodeResponse(*frame);
          Check(response.ok() && response->ok() && response->id == ping.id,
                "conn-chaos: dribbled ping reply is wrong");
        }
        break;
      }
      case 3: {
        // Connect and vanish without a byte.
        auto sock = net::ConnectTcp("127.0.0.1", server->port());
        if (sock.ok()) sock->Close();
        break;
      }
    }
  }

  // Slam into the connection cap: open sockets until one is refused with an
  // explicit kUnavailable frame. The cap counts the two traffic conns too.
  std::vector<net::Socket> held;
  bool refused = false;
  for (std::size_t i = 0; i < max_connections + 8 && !refused; ++i) {
    auto sock = net::ConnectTcp("127.0.0.1", server->port());
    Check(sock.ok(), "conn-chaos: connect failed while probing the cap: " +
                         sock.status().ToString());
    (void)sock->SetReceiveTimeout(2.0);
    net::Request ping;
    ping.type = net::MessageType::kPing;
    ping.id = 8000 + i;
    Check(net::WriteFrame(*sock, net::EncodeRequest(ping)).ok(),
          "conn-chaos: write failed while probing the cap");
    auto frame = net::ReadFrame(*sock);
    Check(frame.ok(), "conn-chaos: no reply while probing the cap: " +
                          frame.status().ToString());
    auto response = net::DecodeResponse(*frame);
    Check(response.ok(), "conn-chaos: undecodable reply at the cap");
    if (response->code == StatusCode::kUnavailable) {
      refused = true;
      break;
    }
    Check(response->ok(), "conn-chaos: unexpected error while filling the "
                          "connection table: " +
                              response->message);
    held.push_back(std::move(sock).value());
  }
  Check(refused, "conn-chaos: never saw a kUnavailable refusal despite "
                 "opening past max_connections");
  held.clear();

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  traffic.Stop();
  CheckServerAlive(server->port(), "connection chaos");
  const net::ServeStats stats = server->stats();
  Check(stats.connections_refused > 0,
        "conn-chaos: stats never counted a refused connection");
  std::printf("phase conn-chaos: %zu hostile connections, cap refusal "
              "observed, server alive (%llu refused total)\n",
              iters,
              static_cast<unsigned long long>(stats.connections_refused));
}

/// Phase 4: arm each net.* failpoint in turn, drive traffic through the
/// wound, prove the site fired and the server recovered once disarmed.
void PhaseFailpoints(net::Server* server, const Fixtures& fx) {
  auto& registry = FailpointRegistry::Instance();
  const std::uint16_t port = server->port();

  const auto hit_count = [&registry](const char* site) {
    return registry.HitCount(site);
  };

  // Data-path sites: bounded fires, reconnect-tolerant client keeps going.
  struct DataSite {
    const char* site;
    StatusCode code;
  };
  for (const DataSite& site : {DataSite{"net.accept", StatusCode::kInternal},
                               DataSite{"net.read.frame", StatusCode::kInternal},
                               DataSite{"net.write.frame", StatusCode::kInternal},
                               DataSite{"net.queue.push",
                                        StatusCode::kUnavailable}}) {
    FailpointSpec spec;
    spec.code = site.code;
    spec.max_fires = 3;
    registry.Enable(site.site, spec);
    std::uint64_t survived = 0;
    for (int attempt = 0; attempt < 60 && survived < 3; ++attempt) {
      net::Request ping;
      ping.type = net::MessageType::kPing;
      ping.id = 9000 + static_cast<std::uint64_t>(attempt);
      auto response = Call(port, ping);
      if (response.ok() && response->ok()) ++survived;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    Check(hit_count(site.site) > 0,
          std::string("failpoints: site ") + site.site + " never fired");
    Check(survived >= 3, std::string("failpoints: server did not recover "
                                     "while ") +
                             site.site + " was armed (bounded fires)");
    registry.Disable(site.site);
    CheckServerAlive(port, std::string("failpoint ") + site.site);
  }

  // Reload-path sites: an armed verify/swap turns a good snapshot into a
  // rejected reload; disarming makes the same snapshot go live again.
  const std::uint64_t version_before = server->registry().ActiveVersion();
  for (const char* site : {"net.reload.verify", "net.reload.swap"}) {
    FailpointSpec spec;
    spec.code = StatusCode::kInternal;
    registry.Enable(site, spec);
    auto rejected = ReloadViaFrame(port, fx.good, 9500);
    Check(rejected.ok(), std::string("failpoints: reload transport failed "
                                     "under ") +
                             site);
    Check(!rejected->ok(), std::string("failpoints: reload succeeded "
                                       "despite armed ") +
                               site);
    Check(server->registry().ActiveVersion() == version_before,
          std::string("failpoints: armed ") + site +
              " still moved the active version");
    Check(hit_count(site) > 0,
          std::string("failpoints: site ") + site + " never fired");
    registry.Disable(site);
    auto accepted = ReloadViaFrame(port, fx.good, 9501);
    Check(accepted.ok() && accepted->ok(),
          std::string("failpoints: reload of a good snapshot failed after "
                      "disarming ") +
              site);
  }
  registry.DisableAll();
  std::printf("phase failpoints: 6 net.* sites fired and recovered\n");
}

/// Phase 5: scrape storm — the telemetry plane must stay coherent while
/// clients hammer kStats concurrently AND the reload pipeline re-publishes
/// the live snapshot. Each scraper holds its own connection and asserts
/// every scrape is answered with parseable JSON whose request count never
/// regresses from its previous scrape (the live-fold monotone-prefix
/// contract under real concurrency).
void PhaseScrapeStorm(net::Server* server, const Fixtures& fx, double qps,
                      std::size_t* reloads_fired) {
  TrafficPool traffic(server->port(), 2, qps / 2, /*tolerant=*/false);
  traffic.Start();

  constexpr std::size_t kScrapers = 4;
  constexpr std::size_t kScrapesEach = 25;
  std::atomic<std::uint64_t> scrapes_answered{0};
  std::vector<std::thread> scrapers;
  for (std::size_t s = 0; s < kScrapers; ++s) {
    scrapers.emplace_back([&, s] {
      auto connected = net::ConnectTcp("127.0.0.1", server->port());
      Check(connected.ok(), "scrape-storm: scraper cannot connect: " +
                                connected.status().ToString());
      net::Socket sock = std::move(connected).value();
      Check(sock.SetReceiveTimeout(10.0).ok(),
            "scrape-storm: cannot set scraper timeout");
      double last_received = -1.0;
      for (std::size_t i = 0; i < kScrapesEach; ++i) {
        net::Request scrape;
        scrape.type = net::MessageType::kStats;
        scrape.id = 20000 + s * 1000 + i;
        Check(net::WriteFrame(sock, net::EncodeRequest(scrape)).ok(),
              "scrape-storm: scrape write failed");
        auto frame = net::ReadFrame(sock);
        Check(frame.ok(), "scrape-storm: scrape reply lost: " +
                              frame.status().ToString());
        auto response = net::DecodeResponse(*frame);
        Check(response.ok() && response->ok() &&
                  response->type == net::MessageType::kStats &&
                  response->id == scrape.id,
              "scrape-storm: malformed scrape reply");
        auto parsed = json::ParseJson(response->text);
        Check(parsed.ok() && parsed->is_object(),
              "scrape-storm: snapshot is not parseable JSON: " +
                  parsed.status().ToString());
        const json::JsonValue* stats = parsed->Find("stats");
        Check(stats != nullptr, "scrape-storm: snapshot lacks stats");
        const double received = stats->NumberOr("requests_received", -1.0);
        Check(received >= last_received,
              "scrape-storm: request count regressed between scrapes (" +
                  std::to_string(last_received) + " -> " +
                  std::to_string(received) + ")");
        last_received = received;
        scrapes_answered.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::milliseconds(3));
      }
    });
  }

  // The reload storm underneath: re-publishing the already-live snapshot is
  // idempotent (same version, allowed), so every attempt either succeeds or
  // is refused with "already in progress" — nothing else.
  constexpr std::size_t kReloads = 10;
  std::size_t reload_ok = 0;
  for (std::size_t r = 0; r < kReloads; ++r) {
    auto response = ReloadViaFrame(server->port(), fx.good, 21000 + r);
    Check(response.ok(), "scrape-storm: reload transport failed: " +
                             response.status().ToString());
    if (response->ok()) {
      ++reload_ok;
    } else {
      Check(response->code == StatusCode::kUnavailable,
            "scrape-storm: reload failed with unexpected error: " +
                response->message);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  Check(reload_ok >= 1, "scrape-storm: not a single storm reload landed");
  *reloads_fired = reload_ok;

  for (std::thread& t : scrapers) t.join();
  traffic.Stop();
  Check(scrapes_answered.load() == kScrapers * kScrapesEach,
        "scrape-storm: lost scrape replies (" +
            std::to_string(scrapes_answered.load()) + " of " +
            std::to_string(kScrapers * kScrapesEach) + ")");
  Check(traffic.errors() == 0,
        "scrape-storm: scrapes disturbed request traffic (" +
            std::to_string(traffic.errors()) + " errors)");
  Check(traffic.replies() == traffic.sent(),
        "scrape-storm: request replies lost during the scrape storm");

  // One last scrape reflects the storm: the stats_scrapes counter must have
  // counted every one of them.
  net::Request final_scrape;
  final_scrape.type = net::MessageType::kStats;
  final_scrape.id = 22000;
  auto response = Call(server->port(), final_scrape);
  Check(response.ok() && response->ok(),
        "scrape-storm: final scrape failed");
  auto parsed = json::ParseJson(response->text);
  Check(parsed.ok(), "scrape-storm: final snapshot unparseable");
  const json::JsonValue* stats = parsed->Find("stats");
  Check(stats != nullptr &&
            stats->NumberOr("stats_scrapes", 0.0) >=
                static_cast<double>(kScrapers * kScrapesEach),
        "scrape-storm: stats_scrapes undercounts the storm");
  std::printf("phase scrape-storm: %zu concurrent scrapes answered, "
              "%zu idempotent reloads landed, 0 lost replies\n",
              kScrapers * kScrapesEach, reload_ok);
}

/// Phase 6: graceful drain under live traffic — every admitted request is
/// answered, Wait() is clean. The accounting identity is taken as a delta
/// over this phase only: earlier phases deliberately push reload frames and
/// undecodable bodies through the reader, which count as received but are
/// accounted in the reload stats / bad-frame metric instead of the
/// per-request verdict counters.
void PhaseDrain(net::Server* server, double qps) {
  const net::ServeStats before = server->stats();
  TrafficPool traffic(server->port(), 3, qps, /*tolerant=*/true);
  traffic.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  server->RequestShutdown();
  Status drained = server->Wait();
  Check(drained.ok(), "drain: Wait() returned " + drained.ToString());
  traffic.Stop();
  const net::ServeStats stats = server->stats();
  const std::uint64_t received =
      stats.requests_received - before.requests_received;
  const std::uint64_t accounted =
      (stats.requests_ok - before.requests_ok) +
      (stats.requests_error - before.requests_error) +
      (stats.requests_shed - before.requests_shed) +
      (stats.requests_deadline_exceeded - before.requests_deadline_exceeded);
  Check(received == accounted,
        "drain: " + std::to_string(received - accounted) +
            " admitted requests vanished without a verdict");
  std::printf("phase drain: clean shutdown under load (%llu requests, "
              "%llu answered in drain)\n",
              static_cast<unsigned long long>(received),
              static_cast<unsigned long long>(stats.drained_in_flight));
}

// ---------------------------------------------------------------------------

int Main(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  const double qps = std::atof(GetArg(args, "qps", "250").c_str());
  const std::size_t swaps = static_cast<std::size_t>(
      std::atol(GetArg(args, "swaps", "8").c_str()));
  const std::size_t chaos_iters = static_cast<std::size_t>(
      std::atol(GetArg(args, "chaos-iters", "24").c_str()));
  std::string dir = GetArg(args, "dir", "");
  const bool keep = GetArg(args, "keep", "0") == "1";
  Check(qps >= 200.0, "chaos traffic must be >= 200 QPS (got " +
                          GetArg(args, "qps", "250") + ")");
  Check(swaps >= 2, "need at least 2 swaps for a storm");

  if (dir.empty()) {
    dir = "/tmp/adarts_chaos." + std::to_string(::getpid());
  }
  std::string mkdir_cmd = "mkdir -p " + dir;
  Check(std::system(mkdir_cmd.c_str()) == 0, "cannot create " + dir);

  std::printf("chaos_serve: training fixture engine...\n");
  std::fflush(stdout);
  auto trained = Adarts::Train(SmallCorpus(), FastOptions());
  Check(trained.ok(), "fixture training failed: " +
                          trained.status().ToString());
  Adarts engine = std::move(trained).value();

  constexpr std::uint64_t kBaseVersion = 10;
  const Fixtures fx = BuildFixtures(&engine, dir, kBaseVersion, swaps);

  net::ServeOptions options;
  options.num_workers = 2;
  options.queue_capacity = 64;
  options.max_connections = 24;
  options.model_path = fx.good;
  net::Server server(engine, options);
  Status started = server.Start();
  Check(started.ok(), "server start: " + started.ToString());
  std::printf("chaos_serve: serving engine v%llu on 127.0.0.1:%u\n",
              static_cast<unsigned long long>(kBaseVersion),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  PhaseSwapStorm(&server, fx, qps);
  PhaseBadReloads(&server, fx, qps);
  PhaseConnChaos(&server, chaos_iters, qps, options.max_connections);
  PhaseFailpoints(&server, fx);
  std::size_t storm_reloads = 0;
  PhaseScrapeStorm(&server, fx, qps, &storm_reloads);
  PhaseDrain(&server, qps);

  // Swap-log sanity: the seed publish, every storm swap, the two
  // failpoint-recovery reloads, the scrape-storm's idempotent re-publishes;
  // at least four rejections (bad-reloads) plus the two armed reload sites.
  std::size_t successes = 0, failures = 0;
  for (const net::SwapRecord& record : server.registry().SwapLog()) {
    (record.success ? successes : failures)++;
  }
  Check(successes >= 1 + swaps + 2 + storm_reloads,
        "swap log records too few successes");
  Check(failures >= 6, "swap log records too few rejections");

  if (!keep) {
    std::string cleanup = "rm -rf " + dir;
    Check(std::system(cleanup.c_str()) == 0, "cleanup failed");
  }
  std::printf("chaos_serve: all phases passed (swap log: %zu publishes, "
              "%zu rejections)\n",
              successes, failures);
  return 0;
}

}  // namespace
}  // namespace adarts::chaos

int main(int argc, char** argv) { return adarts::chaos::Main(argc, argv); }
