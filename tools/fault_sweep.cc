// Fault-sweep driver for the CI fault-injection job (DESIGN.md §7).
//
// Runs the full engine surface — train, recommend, batch-recommend, repair,
// save/load, CSV I/O, every imputer — with whatever failpoints the
// ADARTS_FAILPOINTS environment variable armed (none is fine too), and
// exits 0 as long as every operation either succeeds with a valid result or
// fails with a clean Status. The process crashing, hanging, or tripping a
// sanitizer is the only failure mode; CI loops this binary over
// seeded-random failpoint combinations.
//
//   ADARTS_FAILPOINTS="impute.svd.fit;la.svd=numerical@2" ./fault_sweep
//
// Prints one line per operation so a failing CI iteration is diagnosable
// from the log alone.

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "adarts/adarts.h"
#include "common/exec_context.h"
#include "common/failpoint.h"
#include "common/rng.h"
#include "common/trace.h"
#include "data/generators.h"
#include "impute/imputer.h"
#include "io/csv.h"
#include "ts/missing.h"

namespace {

using adarts::Status;

void Report(const char* op, const Status& status) {
  std::printf("%-24s %s\n", op,
              status.ok() ? "ok" : status.ToString().c_str());
}

// A result is "valid" when the repaired series have no remaining gaps; a
// degraded-but-valid outcome still satisfies the sweep.
bool FullyRepaired(const std::vector<adarts::ts::TimeSeries>& set) {
  for (const auto& s : set) {
    if (s.HasMissing()) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--list-sites") {
    // One site per line, for the CI job to sample from (no hardcoded list
    // to drift out of date).
    for (std::string_view site : adarts::AllFailpointSites()) {
      std::printf("%.*s\n", static_cast<int>(site.size()), site.data());
    }
    return 0;
  }
  // --trace FILE exports a Chrome trace-event timeline of the sweep; the
  // fault-injection spans land next to the warnings they trigger.
  adarts::TraceOptions trace_options;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--trace") {
      trace_options.path = argv[i + 1];
      trace_options.enabled = true;
    }
  }
  adarts::ScopedTrace trace_session(trace_options);

  const auto armed = adarts::FailpointRegistry::Instance().ArmedSites();
  std::printf("armed failpoints: %zu\n", armed.size());
  for (const auto& site : armed) std::printf("  %s\n", site.c_str());

  adarts::data::GeneratorOptions gopts;
  gopts.num_series = 12;
  gopts.length = 160;
  std::vector<adarts::ts::TimeSeries> corpus;
  for (adarts::data::Category c :
       {adarts::data::Category::kClimate, adarts::data::Category::kMotion,
        adarts::data::Category::kMedical}) {
    for (auto& s : adarts::data::GenerateCategory(c, gopts)) {
      corpus.push_back(std::move(s));
    }
  }

  gopts.num_series = 3;
  gopts.seed = 33;
  auto faulty =
      adarts::data::GenerateCategory(adarts::data::Category::kClimate, gopts);
  adarts::Rng rng(34);
  for (auto& s : faulty) {
    Status injected = adarts::ts::InjectSingleBlock(12, &rng, &s);
    if (!injected.ok()) Report("inject", injected);
  }

  adarts::TrainOptions options;
  options.labeling.algorithms = {
      adarts::impute::Algorithm::kCdRec, adarts::impute::Algorithm::kSvdImpute,
      adarts::impute::Algorithm::kTkcm,
      adarts::impute::Algorithm::kLinearInterp,
      adarts::impute::Algorithm::kMeanImpute};
  options.race.num_seed_pipelines = 12;
  options.race.num_partial_sets = 2;
  options.race.num_folds = 2;
  options.features.landmarks = 16;

  // One ExecContext for the whole sweep: every operation records its stage
  // spans and vote/fit counters here, and the dump at the end shows what the
  // armed failpoints actually did to the run (degraded votes, fallbacks,
  // non-converged fits) beyond the per-operation ok/error lines.
  adarts::ExecContext ctx;

  auto engine = adarts::Adarts::Train(corpus, options, ctx);
  Report("train", engine.status());

  if (engine.ok()) {
    auto rec = engine->Recommend(faulty[0], ctx);
    Report("recommend", rec.status());

    auto batch = engine->RecommendBatch(faulty, {}, ctx);
    Report("recommend_batch", batch.status());

    adarts::RecommendBatchOptions degraded;
    degraded.fail_fast = false;
    auto soft = engine->RecommendBatch(faulty, degraded, ctx);
    Report("recommend_degraded", soft.status());
    if (soft.ok() && soft->size() != faulty.size()) {
      std::fprintf(stderr, "degraded batch lost series\n");
      return 1;
    }

    auto repaired = engine->Repair(faulty[0], ctx);
    Report("repair", repaired.status());
    if (repaired.ok() && repaired->HasMissing()) {
      std::fprintf(stderr, "repair left gaps behind\n");
      return 1;
    }

    auto repaired_set = engine->RepairSet(faulty, degraded, ctx);
    Report("repair_set", repaired_set.status());
    if (repaired_set.ok() && !FullyRepaired(*repaired_set)) {
      std::fprintf(stderr, "repair_set left gaps behind\n");
      return 1;
    }

    const std::string bundle = "/tmp/adarts_fault_sweep_bundle.txt";
    Status saved = engine->Save(bundle);
    Report("save", saved);
    if (saved.ok()) {
      auto loaded = adarts::Adarts::Load(bundle);
      Report("load", loaded.status());
    }
  }

  const std::string csv = "/tmp/adarts_fault_sweep_series.csv";
  Status wrote = adarts::io::WriteSeriesCsv(csv, faulty);
  Report("csv_write", wrote);
  if (wrote.ok()) {
    auto read = adarts::io::ReadSeriesCsv(csv);
    Report("csv_read", read.status());
  }

  for (adarts::impute::Algorithm a : adarts::impute::AllAlgorithms()) {
    adarts::impute::FitDiagnostics diag;
    auto out = adarts::impute::CreateImputer(a)->ImputeSetWithDiagnostics(
        faulty, &diag);
    // The direct-fit battery feeds the same registry: per-family iteration
    // counts and convergence failures show up in the dump below.
    ctx.metrics().Increment("sweep.impute_runs");
    if (!out.ok()) ctx.metrics().Increment("sweep.impute_errors");
    if (diag.iterations > 0) {
      ctx.metrics().Increment("sweep.impute_iterations",
                              static_cast<std::uint64_t>(diag.iterations));
    }
    if (out.ok() && !diag.converged) {
      ctx.metrics().Increment("sweep.impute_not_converged");
    }
    std::printf("impute %-12s %s%s\n",
                std::string(adarts::impute::AlgorithmToString(a)).c_str(),
                out.ok() ? "ok" : out.status().ToString().c_str(),
                out.ok() && !diag.converged ? " (not converged)" : "");
    if (out.ok() && !FullyRepaired(*out)) {
      std::fprintf(stderr, "imputer left gaps behind\n");
      return 1;
    }
  }

  // Everything the context saw, one name=value line per metric: stage spans
  // (train.*_seconds), vote health (vote.members_failed,
  // recommend.degraded), repair fallbacks and fit convergence.
  std::printf("--- metrics ---\n%s",
              ctx.metrics().Snapshot().ToString().c_str());

  std::printf("sweep done\n");
  return 0;
}
