// serve_loadgen — open-loop load generator for adarts_serve.
//
//   serve_loadgen (--port N | --port-file FILE) [--qps F] [--requests N]
//                 [--connections N] [--type ping|recommend|batch|repair]
//                 [--batch-size N] [--length N] [--missing F] [--seed N]
//                 [--deadline-ms F] [--timeout-s F] [--retries N]
//                 [--retry-base-ms F] [--scrape N] [--json FILE]
//
// Open loop: every request has a scheduled send time on a fixed-QPS grid
// (request i fires at start + i/qps), independent of when responses come
// back — so a slow server accumulates queueing delay instead of silently
// throttling the generator, which is the point of measuring an admission
// queue. Requests round-robin over N connections; each connection runs an
// independent writer (paced sends + due retries) and reader (response
// matching by echoed id) thread.
//
// A shed (kUnavailable) reply is not terminal: the request is retried up
// to --retries more times with jittered exponential backoff
// (retry-base-ms * 2^attempt, jittered ±50%), the way a well-behaved
// client treats explicit admission-control pushback. Only a shed that
// survives every attempt counts in the `shed` total.
//
// Emits one JSON line per run (the BENCH_serve.json record), readable by
// tools/bench_compare: `metrics` carries the direction-aware counters
// (shed/errors/lost/retries lower-better, throughput_rps higher-better)
// and `stages.histograms["serve.latency"]` the p50/p90/p99 perf surface
// for --check-perf. The flat legacy fields stay for scripts.
//
// --scrape N interleaves N kStats telemetry scrapes spaced evenly through
// the burst on a dedicated connection (DESIGN.md §14) — proof the daemon
// stays observable under the very load being generated. The last snapshot
// is embedded verbatim in the --json record under "scrape" (NOT in the
// bench_compare `metrics` map, so baseline gating is unaffected); a scrape
// that goes unanswered fails the run.
//
// Exit status: 0 when every request was answered (ok, terminally-shed and
// error responses all count as answered — shedding is correct behaviour
// under overload); nonzero when replies were lost or a connection failed.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "ts/time_series.h"

namespace adarts::loadgen {
namespace {

using Clock = std::chrono::steady_clock;

using Args = std::map<std::string, std::string>;

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    if (key.rfind("--", 0) == 0) key = key.substr(2);
    args[key] = argv[i + 1];
  }
  return args;
}

std::string GetArg(const Args& args, const std::string& key,
                   const std::string& fallback) {
  const auto it = args.find(key);
  return it != args.end() ? it->second : fallback;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: serve_loadgen (--port N | --port-file FILE) [--qps F]\n"
      "                     [--requests N] [--connections N]\n"
      "                     [--type ping|recommend|batch|repair]\n"
      "                     [--batch-size N] [--length N] [--missing F]\n"
      "                     [--seed N] [--deadline-ms F] [--timeout-s F]\n"
      "                     [--retries N] [--retry-base-ms F]\n"
      "                     [--scrape N] [--json FILE]\n");
  return 2;
}

/// One synthetic faulty series: a deterministic seasonal signal with a
/// missing block plus scattered missing points (endpoints kept observed).
ts::TimeSeries MakeFaultySeries(std::size_t length, double missing_fraction,
                                Rng* rng) {
  la::Vector values(length);
  std::vector<bool> missing(length, false);
  const double phase = rng->Uniform(0.0, 6.28318530717958648);
  for (std::size_t i = 0; i < length; ++i) {
    values[i] = std::sin(phase + 0.31 * static_cast<double>(i)) +
                0.1 * rng->Normal();
  }
  for (std::size_t i = 1; i + 1 < length; ++i) {
    if (rng->Bernoulli(missing_fraction)) {
      missing[i] = true;
      values[i] = 0.0;
    }
  }
  missing[length / 2] = true;  // at least one missing position
  values[length / 2] = 0.0;
  return ts::TimeSeries(std::move(values), std::move(missing));
}

struct Totals {
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> errors{0};
  std::atomic<std::uint64_t> answered{0};
  std::atomic<std::uint64_t> retries{0};
};

/// One request awaiting a backed-off re-send.
struct RetryItem {
  std::uint64_t due_ns = 0;
  std::uint64_t id = 0;
};

/// Writer/reader rendezvous for one connection: the reader schedules
/// retries here and flips `done` when every id assigned to the connection
/// reached a terminal outcome; the writer interleaves due retries with its
/// paced initial sends.
struct ConnChannel {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<RetryItem> retries;
  std::size_t terminal = 0;
  std::size_t share = 0;
  bool done = false;
};

int Main(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);

  int port = std::atoi(GetArg(args, "port", "0").c_str());
  const std::string port_file = GetArg(args, "port-file", "");
  if (port == 0 && !port_file.empty()) {
    std::ifstream in(port_file);
    in >> port;
  }
  if (port <= 0 || port > 65535) return Usage();

  const double qps = std::atof(GetArg(args, "qps", "200").c_str());
  const std::size_t requests = static_cast<std::size_t>(
      std::atol(GetArg(args, "requests", "200").c_str()));
  const std::size_t connections = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::atol(GetArg(args, "connections", "4").c_str())));
  const std::string type_name = GetArg(args, "type", "recommend");
  const std::size_t batch_size = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::atol(GetArg(args, "batch-size", "4").c_str())));
  const std::size_t length = static_cast<std::size_t>(
      std::atol(GetArg(args, "length", "64").c_str()));
  const double missing = std::atof(GetArg(args, "missing", "0.2").c_str());
  const std::uint64_t seed = static_cast<std::uint64_t>(
      std::atoll(GetArg(args, "seed", "1").c_str()));
  const double deadline_ms =
      std::atof(GetArg(args, "deadline-ms", "0").c_str());
  const double timeout_s =
      std::atof(GetArg(args, "timeout-s", "15").c_str());
  // Bounded extra attempts after a shed; 0 restores shed-is-terminal.
  const std::uint64_t max_retries = static_cast<std::uint64_t>(
      std::atoll(GetArg(args, "retries", "3").c_str()));
  const double retry_base_ms =
      std::atof(GetArg(args, "retry-base-ms", "2").c_str());
  const std::size_t scrapes = static_cast<std::size_t>(
      std::atol(GetArg(args, "scrape", "0").c_str()));

  net::MessageType type;
  if (type_name == "ping") {
    type = net::MessageType::kPing;
  } else if (type_name == "recommend") {
    type = net::MessageType::kRecommend;
  } else if (type_name == "batch") {
    type = net::MessageType::kRecommendBatch;
  } else if (type_name == "repair") {
    type = net::MessageType::kRepair;
  } else {
    return Usage();
  }
  if (requests == 0 || qps <= 0.0) return Usage();

  // Pre-encode a small rotation of request bodies (the id field is patched
  // per send) so encoding cost stays off the paced send path.
  Rng rng(seed);
  std::vector<ts::TimeSeries> series_pool;
  for (std::size_t i = 0; i < 8; ++i) {
    series_pool.push_back(MakeFaultySeries(length, missing, &rng));
  }
  std::vector<std::string> bodies;
  for (std::size_t i = 0; i < series_pool.size(); ++i) {
    net::Request request;
    request.type = type;
    request.deadline_ms = deadline_ms;
    if (type == net::MessageType::kRecommendBatch) {
      for (std::size_t b = 0; b < batch_size; ++b) {
        request.series.push_back(series_pool[(i + b) % series_pool.size()]);
      }
    } else if (type != net::MessageType::kPing) {
      request.series.push_back(series_pool[i]);
    }
    bodies.push_back(EncodeRequest(request));
  }

  std::vector<net::Socket> socks(connections);
  for (std::size_t c = 0; c < connections; ++c) {
    auto sock =
        net::ConnectTcp("127.0.0.1", static_cast<std::uint16_t>(port));
    if (!sock.ok()) return Fail(sock.status());
    socks[c] = std::move(sock).value();
    Status timeout_set = socks[c].SetReceiveTimeout(timeout_s);
    if (!timeout_set.ok()) return Fail(timeout_set);
  }

  // send_ns[id] is written by the sender before the frame hits the wire and
  // read by the receiver after the echoed id comes back on the same
  // connection, so each slot has one writer and a happens-after reader.
  std::vector<std::atomic<std::uint64_t>> send_ns(requests);
  std::vector<std::atomic<std::uint64_t>> latency_ns(requests);
  std::vector<std::atomic<std::uint64_t>> retries_used(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    send_ns[i].store(0, std::memory_order_relaxed);
    latency_ns[i].store(0, std::memory_order_relaxed);
    retries_used[i].store(0, std::memory_order_relaxed);
  }
  Totals totals;
  std::atomic<bool> failed{false};

  std::vector<std::unique_ptr<ConnChannel>> channels;
  for (std::size_t c = 0; c < connections; ++c) {
    auto chan = std::make_unique<ConnChannel>();
    chan->share = requests / connections + (c < requests % connections ? 1 : 0);
    channels.push_back(std::move(chan));
  }

  const Clock::time_point start = Clock::now();
  const auto NowNs = [&start]() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start)
            .count());
  };

  // Mid-burst telemetry scrapes on a dedicated connection: the scraper's
  // ids live in their own space and its frames never touch the load
  // connections, so reply matching is unaffected. Only this thread writes
  // last_scrape_json; main reads it after the join.
  std::atomic<std::uint64_t> scrapes_ok{0};
  std::string last_scrape_json;
  std::thread scraper;
  if (scrapes > 0) {
    scraper = std::thread([&] {
      auto sock =
          net::ConnectTcp("127.0.0.1", static_cast<std::uint16_t>(port));
      if (!sock.ok()) return;
      if (!sock->SetReceiveTimeout(timeout_s).ok()) return;
      const double run_s = static_cast<double>(requests) / qps;
      for (std::size_t i = 0; i < scrapes; ++i) {
        // Evenly inside the burst, never at its very edges.
        const double at_s = run_s * static_cast<double>(i + 1) /
                            static_cast<double>(scrapes + 1);
        std::this_thread::sleep_until(
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(at_s)));
        net::Request request;
        request.type = net::MessageType::kStats;
        request.id = 1'000'000'000ull + i;
        if (!WriteFrame(*sock, EncodeRequest(request)).ok()) return;
        auto frame = ReadFrame(*sock);
        if (!frame.ok()) return;
        auto response = net::DecodeResponse(*frame);
        if (!response.ok() || response->type != net::MessageType::kStats ||
            response->id != request.id || response->text.empty()) {
          return;
        }
        scrapes_ok.fetch_add(1, std::memory_order_relaxed);
        last_scrape_json = response->text;
      }
    });
  }

  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < connections; ++c) {
    // Writer: open-loop paced initial sends, interleaved with due retries
    // the reader scheduled. Runs until every id on this connection reached
    // a terminal outcome (chan.done).
    threads.emplace_back([&, c] {
      ConnChannel& chan = *channels[c];
      std::size_t next = c;  // next unsent initial id on this connection
      for (;;) {
        std::uint64_t id = 0;
        std::uint64_t due_ns = 0;
        {
          std::unique_lock<std::mutex> lock(chan.mu);
          for (;;) {
            if (chan.done) return;
            std::size_t best = chan.retries.size();
            for (std::size_t r = 0; r < chan.retries.size(); ++r) {
              if (best == chan.retries.size() ||
                  chan.retries[r].due_ns < chan.retries[best].due_ns) {
                best = r;
              }
            }
            const std::uint64_t initial_due_ns =
                next < requests
                    ? static_cast<std::uint64_t>(
                          static_cast<double>(next) / qps * 1e9)
                    : UINT64_MAX;
            const std::uint64_t retry_due_ns = best < chan.retries.size()
                                                   ? chan.retries[best].due_ns
                                                   : UINT64_MAX;
            if (initial_due_ns == UINT64_MAX && retry_due_ns == UINT64_MAX) {
              // All sent; sleep until the reader schedules a retry or
              // declares the connection done.
              chan.cv.wait(lock);
              continue;
            }
            if (retry_due_ns <= initial_due_ns) {
              id = chan.retries[best].id;
              due_ns = retry_due_ns;
              chan.retries.erase(chan.retries.begin() +
                                 static_cast<std::ptrdiff_t>(best));
            } else {
              id = next;
              due_ns = initial_due_ns;
              next += connections;
            }
            break;
          }
        }
        std::this_thread::sleep_until(
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::nanoseconds(due_ns)));
        // Patch the id (bytes 1..8 of the body, little-endian).
        std::string body = bodies[id % bodies.size()];
        for (int b = 0; b < 8; ++b) {
          body[1 + b] = static_cast<char>((id >> (8 * b)) & 0xff);
        }
        send_ns[id].store(NowNs(), std::memory_order_release);
        Status written = WriteFrame(socks[c], body);
        if (!written.ok()) {
          failed.store(true, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lock(chan.mu);
          chan.done = true;
          return;
        }
      }
    });
    // Reader: match responses by echoed id; a retryable shed goes back to
    // the writer with jittered exponential backoff, everything else is
    // terminal (classified + latency recorded from its last send).
    threads.emplace_back([&, c] {
      ConnChannel& chan = *channels[c];
      const auto finish = [&chan] {
        std::lock_guard<std::mutex> lock(chan.mu);
        chan.done = true;
        chan.cv.notify_all();
      };
      for (;;) {
        {
          std::lock_guard<std::mutex> lock(chan.mu);
          if (chan.terminal >= chan.share) break;
        }
        auto frame = ReadFrame(socks[c]);
        if (!frame.ok()) {
          failed.store(true, std::memory_order_relaxed);
          break;
        }
        auto response = net::DecodeResponse(*frame);
        if (!response.ok() || response->id >= requests) {
          failed.store(true, std::memory_order_relaxed);
          break;
        }
        const std::uint64_t id = response->id;
        if (response->code == StatusCode::kUnavailable &&
            retries_used[id].load(std::memory_order_relaxed) < max_retries) {
          // Explicit admission-control pushback: back off and retry.
          // Deterministic jitter in [0.5, 1.5) decorrelates clients without
          // an RNG on the hot path.
          const std::uint64_t attempt =
              retries_used[id].fetch_add(1, std::memory_order_relaxed) + 1;
          totals.retries.fetch_add(1, std::memory_order_relaxed);
          const double jitter =
              0.5 + static_cast<double>(
                        (id * 2654435761ULL + attempt * 40503ULL) % 1024) /
                        1024.0;
          const double delay_ms =
              retry_base_ms *
              std::ldexp(1.0, static_cast<int>(attempt) - 1) * jitter;
          RetryItem item;
          item.id = id;
          item.due_ns =
              NowNs() + static_cast<std::uint64_t>(delay_ms * 1e6);
          std::lock_guard<std::mutex> lock(chan.mu);
          chan.retries.push_back(item);
          chan.cv.notify_all();
          continue;
        }
        const std::uint64_t sent = send_ns[id].load(std::memory_order_acquire);
        latency_ns[id].store(NowNs() > sent ? NowNs() - sent : 1,
                             std::memory_order_relaxed);
        totals.answered.fetch_add(1, std::memory_order_relaxed);
        if (response->code == StatusCode::kOk) {
          totals.ok.fetch_add(1, std::memory_order_relaxed);
        } else if (response->code == StatusCode::kUnavailable) {
          totals.shed.fetch_add(1, std::memory_order_relaxed);
        } else {
          totals.errors.fetch_add(1, std::memory_order_relaxed);
        }
        std::lock_guard<std::mutex> lock(chan.mu);
        ++chan.terminal;
      }
      finish();
    });
  }
  for (std::thread& t : threads) t.join();
  if (scraper.joinable()) scraper.join();
  const double elapsed_s = static_cast<double>(NowNs()) / 1e9;
  for (net::Socket& sock : socks) sock.Close();

  const std::uint64_t ok = totals.ok.load();
  const std::uint64_t shed = totals.shed.load();
  const std::uint64_t errors = totals.errors.load();
  const std::uint64_t answered = totals.answered.load();
  const std::uint64_t retries = totals.retries.load();
  const std::uint64_t lost = requests - answered;

  // Percentiles over successfully served requests (shed replies return in
  // microseconds and would flatter the tail).
  std::vector<std::uint64_t> served;
  for (std::size_t i = 0; i < requests; ++i) {
    const std::uint64_t ns = latency_ns[i].load(std::memory_order_relaxed);
    if (ns > 0) served.push_back(ns);
  }
  std::sort(served.begin(), served.end());
  const auto Percentile = [&served](double q) {
    if (served.empty()) return 0.0;
    const std::size_t idx = static_cast<std::size_t>(
        q * static_cast<double>(served.size() - 1) + 0.5);
    return static_cast<double>(served[idx]) / 1e6;
  };
  const double p50_ms = Percentile(0.50);
  const double p90_ms = Percentile(0.90);
  const double p99_ms = Percentile(0.99);
  const double throughput =
      elapsed_s > 0.0 ? static_cast<double>(answered) / elapsed_s : 0.0;

  std::printf(
      "serve_loadgen: %zu requests @ %.0f qps over %zu connections: "
      "%llu ok, %llu shed, %llu errors, %llu lost, %llu retries; "
      "p50 %.2f ms, p90 %.2f ms, p99 %.2f ms, %.1f rps\n",
      requests, qps, connections, static_cast<unsigned long long>(ok),
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(errors),
      static_cast<unsigned long long>(lost),
      static_cast<unsigned long long>(retries), p50_ms, p90_ms, p99_ms,
      throughput);
  if (scrapes > 0) {
    std::printf("serve_loadgen: %llu of %zu mid-burst scrapes answered\n",
                static_cast<unsigned long long>(scrapes_ok.load()), scrapes);
  }

  const std::string json_path = GetArg(args, "json", "");
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::app);
    char line[2048];
    // One bench_compare-readable record: `checksum` is a fixed 0 (a load
    // test has no result digest), `metrics` carries the direction-aware
    // counters, `stages.histograms` the latency percentiles that
    // --check-perf gates. The flat fields repeat the counters for scripts
    // that predate the record schema.
    std::snprintf(
        line, sizeof(line),
        "{\"bench\":\"serve.loadgen\",\"params\":{\"qps\":\"%.0f\","
        "\"requests\":\"%zu\",\"connections\":\"%zu\",\"type\":\"%s\","
        "\"seed\":\"%llu\"},\"seconds\":%.6f,\"checksum\":0,"
        "\"metrics\":{\"shed\":%llu,\"errors\":%llu,\"lost\":%llu,"
        "\"retries\":%llu,\"throughput_rps\":%.1f},"
        "\"stages\":{\"histograms\":{\"serve.latency\":{"
        "\"p50_ns\":%.0f,\"p90_ns\":%.0f,\"p99_ns\":%.0f}}},"
        "\"p50_ms\":%.3f,\"p90_ms\":%.3f,\"p99_ms\":%.3f,"
        "\"throughput_rps\":%.1f,\"requests\":%zu,\"ok\":%llu,"
        "\"shed\":%llu,\"errors\":%llu,\"lost\":%llu,\"retries\":%llu}",
        qps, requests, connections, type_name.c_str(),
        static_cast<unsigned long long>(seed), elapsed_s,
        static_cast<unsigned long long>(shed),
        static_cast<unsigned long long>(errors),
        static_cast<unsigned long long>(lost),
        static_cast<unsigned long long>(retries), throughput, p50_ms * 1e6,
        p90_ms * 1e6, p99_ms * 1e6, p50_ms, p90_ms, p99_ms, throughput,
        requests, static_cast<unsigned long long>(ok),
        static_cast<unsigned long long>(shed),
        static_cast<unsigned long long>(errors),
        static_cast<unsigned long long>(lost),
        static_cast<unsigned long long>(retries));
    std::string record(line);
    if (scrapes > 0 && !last_scrape_json.empty()) {
      // The snapshot is itself a JSON object, embedded verbatim as a
      // top-level sub-object — bench_compare gates only the `metrics`
      // map, so this stays purely informational.
      record.insert(record.size() - 1,
                    ",\"scrape\":{\"requested\":" + std::to_string(scrapes) +
                        ",\"answered\":" +
                        std::to_string(scrapes_ok.load()) +
                        ",\"last\":" + last_scrape_json + "}");
    }
    out << record << "\n";
    if (!out.good()) {
      return Fail(Status::Internal("cannot write json: " + json_path));
    }
  }

  if (failed.load() || lost != 0) {
    std::fprintf(stderr, "serve_loadgen: lost %llu of %zu replies\n",
                 static_cast<unsigned long long>(lost), requests);
    return 1;
  }
  if (scrapes > 0 && scrapes_ok.load() != scrapes) {
    std::fprintf(stderr,
                 "serve_loadgen: only %llu of %zu mid-burst scrapes "
                 "answered\n",
                 static_cast<unsigned long long>(scrapes_ok.load()), scrapes);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace adarts::loadgen

int main(int argc, char** argv) { return adarts::loadgen::Main(argc, argv); }
