// trace_stats — summarizes a Chrome trace-event JSON produced by the
// engine's tracer (`--trace <path>` on the CLI, benches and fault_sweep, or
// ADARTS_TRACE=<path>) for CI logs and headless boxes where opening
// chrome://tracing is not an option.
//
//   trace_stats trace.json [--top N]
//
// Reports the top span families by total and self time (self = total minus
// the time covered by spans nested inside, per thread), per-thread busy
// utilization %, and the dropped-events count. The JSON reader below is a
// minimal recursive-descent parser for the tracer's output schema — the
// repo deliberately has no third-party JSON dependency.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON value + parser (objects, arrays, strings, numbers, literals).
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* Find(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    const bool ok = ParseValue(out);
    SkipWhitespace();
    return ok && pos_ == text_.size();
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    SkipWhitespace();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->str);
      case 't':
      case 'f':
        return ParseLiteral(out);
      case 'n':
        return ParseLiteral(out);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    if (!Consume('{')) return false;
    if (Consume('}')) return true;
    for (;;) {
      SkipWhitespace();
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace(std::move(key), std::move(value));
      if (Consume(',')) continue;
      return Consume('}');
    }
  }

  bool ParseArray(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    if (!Consume('[')) return false;
    if (Consume(']')) return true;
    for (;;) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      if (Consume(',')) continue;
      return Consume(']');
    }
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'u': {
          // The tracer only emits \u00XX escapes for control characters;
          // decode the low byte and ignore the (always-zero) high byte.
          if (pos_ + 4 > text_.size()) return false;
          const std::string hex = text_.substr(pos_, 4);
          pos_ += 4;
          out->push_back(static_cast<char>(
              std::strtol(hex.c_str(), nullptr, 16) & 0xff));
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated string
  }

  bool ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            std::strchr("+-.eE", text_[pos_]) != nullptr)) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->type = JsonValue::Type::kNumber;
    out->number = std::atof(text_.substr(start, pos_ - start).c_str());
    return true;
  }

  bool ParseLiteral(JsonValue* out) {
    const auto match = [&](const char* word) {
      const std::size_t len = std::strlen(word);
      if (text_.compare(pos_, len, word) != 0) return false;
      pos_ += len;
      return true;
    };
    if (match("true")) {
      out->type = JsonValue::Type::kBool;
      out->boolean = true;
      return true;
    }
    if (match("false")) {
      out->type = JsonValue::Type::kBool;
      out->boolean = false;
      return true;
    }
    if (match("null")) {
      out->type = JsonValue::Type::kNull;
      return true;
    }
    return false;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Trace analysis.
// ---------------------------------------------------------------------------

struct SpanEvent {
  int tid = 0;
  std::string name;
  double ts_us = 0.0;
  double dur_us = 0.0;
};

struct FamilyStats {
  std::size_t count = 0;
  double total_us = 0.0;
  double self_us = 0.0;
};

struct ThreadStats {
  std::string name;
  double busy_us = 0.0;  // top-level span time (no double counting)
  std::size_t spans = 0;
};

double NumberOr(const JsonValue* v, double fallback) {
  return v != nullptr && v->type == JsonValue::Type::kNumber ? v->number
                                                             : fallback;
}

int Fail(const char* message) {
  std::fprintf(stderr, "trace_stats: %s\n", message);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::size_t top = 12;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      top = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (path.empty()) {
      path = argv[i];
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: trace_stats <trace.json> [--top N]\n");
    return 2;
  }

  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Fail("cannot open trace file");
  std::string text;
  char buf[1 << 16];
  for (;;) {
    const std::size_t n = std::fread(buf, 1, sizeof(buf), f);
    text.append(buf, n);
    if (n < sizeof(buf)) break;
  }
  std::fclose(f);

  JsonValue root;
  if (!JsonParser(text).Parse(&root) ||
      root.type != JsonValue::Type::kObject) {
    return Fail("not valid JSON");
  }
  const JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || events->type != JsonValue::Type::kArray) {
    return Fail("no traceEvents array — not a Chrome trace-event file");
  }

  std::vector<SpanEvent> spans;
  std::map<int, std::string> thread_names;
  std::size_t instants = 0;
  std::size_t counters = 0;
  for (const JsonValue& e : events->array) {
    if (e.type != JsonValue::Type::kObject) continue;
    const JsonValue* ph = e.Find("ph");
    if (ph == nullptr || ph->type != JsonValue::Type::kString) continue;
    const int tid = static_cast<int>(NumberOr(e.Find("tid"), 0.0));
    if (ph->str == "M") {
      const JsonValue* name = e.Find("name");
      const JsonValue* args = e.Find("args");
      if (name != nullptr && name->str == "thread_name" && args != nullptr) {
        const JsonValue* tname = args->Find("name");
        if (tname != nullptr) thread_names[tid] = tname->str;
      }
    } else if (ph->str == "X") {
      const JsonValue* name = e.Find("name");
      if (name == nullptr) continue;
      spans.push_back({tid, name->str, NumberOr(e.Find("ts"), 0.0),
                       NumberOr(e.Find("dur"), 0.0)});
    } else if (ph->str == "i") {
      ++instants;
    } else if (ph->str == "C") {
      ++counters;
    }
  }

  // Self time: per thread, sort spans by (start asc, duration desc) so a
  // parent sorts before the children it encloses, then walk with a stack —
  // each span's duration is subtracted from its innermost enclosing parent.
  std::map<std::string, FamilyStats> families;
  std::map<int, ThreadStats> threads;
  double trace_begin_us = 1e300;
  double trace_end_us = 0.0;
  std::stable_sort(spans.begin(), spans.end(),
                   [](const SpanEvent& a, const SpanEvent& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                     return a.dur_us > b.dur_us;
                   });
  struct Open {
    const SpanEvent* span;
    double child_us;
  };
  std::vector<Open> stack;
  int current_tid = -1;
  const auto close_down_to = [&](double ts) {
    while (!stack.empty() &&
           stack.back().span->ts_us + stack.back().span->dur_us <=
               ts + 1e-9) {
      const Open& open = stack.back();
      families[open.span->name].self_us +=
          std::max(0.0, open.span->dur_us - open.child_us);
      stack.pop_back();
    }
  };
  for (const SpanEvent& s : spans) {
    if (s.tid != current_tid) {
      close_down_to(1e300);
      current_tid = s.tid;
    }
    close_down_to(s.ts_us);
    FamilyStats& fam = families[s.name];
    ++fam.count;
    fam.total_us += s.dur_us;
    ThreadStats& thread = threads[s.tid];
    ++thread.spans;
    if (stack.empty()) {
      thread.busy_us += s.dur_us;  // top-level: busy time, no double count
    } else {
      stack.back().child_us += s.dur_us;
    }
    stack.push_back({&s, 0.0});
    trace_begin_us = std::min(trace_begin_us, s.ts_us);
    trace_end_us = std::max(trace_end_us, s.ts_us + s.dur_us);
  }
  close_down_to(1e300);
  for (auto& [tid, thread] : threads) {
    const auto it = thread_names.find(tid);
    thread.name = it != thread_names.end() ? it->second
                                           : "tid-" + std::to_string(tid);
  }

  const double wall_us =
      spans.empty() ? 0.0 : std::max(0.0, trace_end_us - trace_begin_us);
  std::printf("trace: %zu spans, %zu instants, %zu counter samples over "
              "%.3f ms on %zu threads\n",
              spans.size(), instants, counters, wall_us / 1e3,
              threads.size());
  const double dropped = [&] {
    const JsonValue* other = root.Find("otherData");
    return other == nullptr ? 0.0
                            : NumberOr(other->Find("dropped_events"), 0.0);
  }();
  if (dropped > 0.0) {
    std::printf("WARNING: %.0f events dropped by full ring buffers — raise "
                "TraceOptions::capacity_per_thread\n",
                dropped);
  }

  std::vector<std::pair<std::string, FamilyStats>> ranked(families.begin(),
                                                          families.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second.total_us > b.second.total_us;
  });
  std::printf("\n%-24s %10s %14s %14s %12s\n", "span", "count", "total_ms",
              "self_ms", "avg_us");
  for (std::size_t i = 0; i < ranked.size() && i < top; ++i) {
    const auto& [name, fam] = ranked[i];
    std::printf("%-24s %10zu %14.3f %14.3f %12.1f\n", name.c_str(), fam.count,
                fam.total_us / 1e3, fam.self_us / 1e3,
                fam.total_us / static_cast<double>(fam.count));
  }

  std::printf("\nper-thread utilization (busy span time / trace wall):\n");
  for (const auto& [tid, thread] : threads) {
    std::printf("  %-20s %6.1f%%  (%zu spans, %.3f ms busy)\n",
                thread.name.c_str(),
                wall_us > 0.0 ? 100.0 * thread.busy_us / wall_us : 0.0,
                thread.spans, thread.busy_us / 1e3);
  }
  return 0;
}
