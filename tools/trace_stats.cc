// trace_stats — summarizes a Chrome trace-event JSON produced by the
// engine's tracer (`--trace <path>` on the CLI, benches and fault_sweep, or
// ADARTS_TRACE=<path>) for CI logs and headless boxes where opening
// chrome://tracing is not an option.
//
//   trace_stats trace.json [--top N]
//
// Reports the top span families by total and self time (self = total minus
// the time covered by spans nested inside, per thread), per-thread busy
// utilization %, and the dropped-events count. JSON reading goes through
// common/json.h — the repo's own minimal parser, shared with bench_compare;
// the repo deliberately has no third-party JSON dependency.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/json.h"

namespace {

using adarts::json::JsonValue;
using adarts::json::ParseJson;

// ---------------------------------------------------------------------------
// Trace analysis.
// ---------------------------------------------------------------------------

struct SpanEvent {
  int tid = 0;
  std::string name;
  double ts_us = 0.0;
  double dur_us = 0.0;
};

struct FamilyStats {
  std::size_t count = 0;
  double total_us = 0.0;
  double self_us = 0.0;
};

struct ThreadStats {
  std::string name;
  double busy_us = 0.0;  // top-level span time (no double counting)
  std::size_t spans = 0;
};

double NumberOr(const JsonValue* v, double fallback) {
  return v != nullptr && v->type == JsonValue::Type::kNumber ? v->number
                                                             : fallback;
}

int Fail(const char* message) {
  std::fprintf(stderr, "trace_stats: %s\n", message);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::size_t top = 12;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      top = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (path.empty()) {
      path = argv[i];
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: trace_stats <trace.json> [--top N]\n");
    return 2;
  }

  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Fail("cannot open trace file");
  std::string text;
  char buf[1 << 16];
  for (;;) {
    const std::size_t n = std::fread(buf, 1, sizeof(buf), f);
    text.append(buf, n);
    if (n < sizeof(buf)) break;
  }
  std::fclose(f);

  const auto parsed = ParseJson(text);
  if (!parsed.ok() || !parsed->is_object()) {
    return Fail("not valid JSON");
  }
  const JsonValue& root = *parsed;
  const JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || events->type != JsonValue::Type::kArray) {
    return Fail("no traceEvents array — not a Chrome trace-event file");
  }

  std::vector<SpanEvent> spans;
  std::map<int, std::string> thread_names;
  std::size_t instants = 0;
  std::size_t counters = 0;
  for (const JsonValue& e : events->array) {
    if (e.type != JsonValue::Type::kObject) continue;
    const JsonValue* ph = e.Find("ph");
    if (ph == nullptr || ph->type != JsonValue::Type::kString) continue;
    const int tid = static_cast<int>(NumberOr(e.Find("tid"), 0.0));
    if (ph->str == "M") {
      const JsonValue* name = e.Find("name");
      const JsonValue* args = e.Find("args");
      if (name != nullptr && name->str == "thread_name" && args != nullptr) {
        const JsonValue* tname = args->Find("name");
        if (tname != nullptr) thread_names[tid] = tname->str;
      }
    } else if (ph->str == "X") {
      const JsonValue* name = e.Find("name");
      if (name == nullptr) continue;
      spans.push_back({tid, name->str, NumberOr(e.Find("ts"), 0.0),
                       NumberOr(e.Find("dur"), 0.0)});
    } else if (ph->str == "i") {
      ++instants;
    } else if (ph->str == "C") {
      ++counters;
    }
  }

  // Self time: per thread, sort spans by (start asc, duration desc) so a
  // parent sorts before the children it encloses, then walk with a stack —
  // each span's duration is subtracted from its innermost enclosing parent.
  std::map<std::string, FamilyStats> families;
  std::map<int, ThreadStats> threads;
  double trace_begin_us = 1e300;
  double trace_end_us = 0.0;
  std::stable_sort(spans.begin(), spans.end(),
                   [](const SpanEvent& a, const SpanEvent& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                     return a.dur_us > b.dur_us;
                   });
  struct Open {
    const SpanEvent* span;
    double child_us;
  };
  std::vector<Open> stack;
  int current_tid = -1;
  const auto close_down_to = [&](double ts) {
    while (!stack.empty() &&
           stack.back().span->ts_us + stack.back().span->dur_us <=
               ts + 1e-9) {
      const Open& open = stack.back();
      families[open.span->name].self_us +=
          std::max(0.0, open.span->dur_us - open.child_us);
      stack.pop_back();
    }
  };
  for (const SpanEvent& s : spans) {
    if (s.tid != current_tid) {
      close_down_to(1e300);
      current_tid = s.tid;
    }
    close_down_to(s.ts_us);
    FamilyStats& fam = families[s.name];
    ++fam.count;
    fam.total_us += s.dur_us;
    ThreadStats& thread = threads[s.tid];
    ++thread.spans;
    if (stack.empty()) {
      thread.busy_us += s.dur_us;  // top-level: busy time, no double count
    } else {
      stack.back().child_us += s.dur_us;
    }
    stack.push_back({&s, 0.0});
    trace_begin_us = std::min(trace_begin_us, s.ts_us);
    trace_end_us = std::max(trace_end_us, s.ts_us + s.dur_us);
  }
  close_down_to(1e300);
  for (auto& [tid, thread] : threads) {
    const auto it = thread_names.find(tid);
    thread.name = it != thread_names.end() ? it->second
                                           : "tid-" + std::to_string(tid);
  }

  const double wall_us =
      spans.empty() ? 0.0 : std::max(0.0, trace_end_us - trace_begin_us);
  std::printf("trace: %zu spans, %zu instants, %zu counter samples over "
              "%.3f ms on %zu threads\n",
              spans.size(), instants, counters, wall_us / 1e3,
              threads.size());
  const double dropped = [&] {
    const JsonValue* other = root.Find("otherData");
    return other == nullptr ? 0.0
                            : NumberOr(other->Find("dropped_events"), 0.0);
  }();
  if (dropped > 0.0) {
    std::printf("WARNING: %.0f events dropped by full ring buffers — raise "
                "TraceOptions::capacity_per_thread\n",
                dropped);
  }

  std::vector<std::pair<std::string, FamilyStats>> ranked(families.begin(),
                                                          families.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second.total_us > b.second.total_us;
  });
  std::printf("\n%-24s %10s %14s %14s %12s\n", "span", "count", "total_ms",
              "self_ms", "avg_us");
  for (std::size_t i = 0; i < ranked.size() && i < top; ++i) {
    const auto& [name, fam] = ranked[i];
    std::printf("%-24s %10zu %14.3f %14.3f %12.1f\n", name.c_str(), fam.count,
                fam.total_us / 1e3, fam.self_us / 1e3,
                fam.total_us / static_cast<double>(fam.count));
  }

  std::printf("\nper-thread utilization (busy span time / trace wall):\n");
  for (const auto& [tid, thread] : threads) {
    std::printf("  %-20s %6.1f%%  (%zu spans, %.3f ms busy)\n",
                thread.name.c_str(),
                wall_us > 0.0 ? 100.0 * thread.busy_us / wall_us : 0.0,
                thread.spans, thread.busy_us / 1e3);
  }
  return 0;
}
